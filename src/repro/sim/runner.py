"""Multi-trial runner: repeat a simulation with independent seeds and aggregate.

Trials are independent by construction (each gets its own root seed from
:func:`repro.rng.trial_seeds`), which makes them embarrassingly parallel: pass
``workers=N`` to fan trials out over ``N`` forked worker processes.  Seeds are
derived identically in the serial and parallel paths, so a parallel study is
seed-for-seed identical to a serial one — only wall-clock changes.  Each
worker returns its shard's bulk prefix/node columns through one
``multiprocessing.shared_memory`` block (:mod:`repro.sim.shm`); only O(1)
metadata per trial crosses the pickle pipe.

Worker shards run under a *supervisor* (:class:`SupervisorPolicy`): each
shard is dispatched asynchronously to its own forked process, crashes are
detected (instead of surfacing as an opaque ``RemoteError`` or a hang),
hung shards are terminated after a configurable timeout, and failed shards
are retried with capped exponential backoff.  Because every shard is a
deterministic contiguous trial range, a retried shard reproduces exactly
the results the crashed attempt would have produced — faults never change
results, only wall-clock.  When a shard exhausts its retries the pool
degrades gracefully: the shard runs in-process serially (or, with
``degrade=False``, raises a typed :class:`~repro.errors.WorkerError`
carrying the shard index and trial range).  Every recovery action is
recorded on the study's :class:`~repro.sim.health.RunHealth`.

Backends
--------

``backend`` accepts the study-level ladder:

* ``"batched-study"`` — the whole study (or each worker's shard of it) is
  executed by :class:`~repro.sim.backends.BatchedStudyKernel` in one numpy
  pass; requires a vector-eligible protocol and a precompilable adversary.
* ``"lockstep-jit"`` — the lockstep semantics lowered into one fused slot
  loop (:class:`~repro.sim.backends.CompiledStudyKernel`), numba-compiled
  when numba is installed; demotes automatically (and silently) to the
  numpy lockstep kernel when it cannot run, with identical results.
* ``"lockstep"`` — the study is executed by
  :class:`~repro.sim.backends.LockstepStudyKernel`, which advances all
  trials one slot at a time with array operations; serves feedback-driven
  protocols with a columnar :class:`~repro.protocols.base.LockstepProgram`
  (the paper's CJZ algorithm, windowed/sawtooth backoff) against any
  adversary, adaptive ones included.
* ``"auto"`` (default) — batched-study when the study is eligible, else the
  compiled lockstep tier (falling through to numpy lockstep internally)
  when the protocol has a columnar program *and* the study carries enough
  concurrent population to amortize the kernel's fixed per-slot cost (≥ 8
  trials, or trials × peak single-slot arrivals ≥ 24 — see
  :meth:`LockstepStudyKernel.auto_preferred`), else per trial the
  vectorized kernel when eligible, else the reference kernel.
* ``"vectorized"`` / ``"reference"`` — per-trial kernels, forwarded to every
  :class:`~repro.sim.engine.Simulator`.

All paths are seed-for-seed identical; only wall-clock differs.

Metric pipelines and streaming
------------------------------

``pipeline=`` attaches a :class:`~repro.metrics.MetricPipeline` (or its
serializable :class:`~repro.spec.PipelineSpec`): every finished trial is
reduced into the pipeline's columnar reducers, on *any* backend — the
batched study kernel included — and under ``workers > 1``, where each
worker reduces its contiguous shard into a fresh pipeline clone and the
parent merges the shard partials back in trial order (identical to a
serial reduction; property-tested).  ``streaming=True`` additionally drops
each trial's O(horizon) prefix columns the moment all reducers have
consumed it, so huge-horizon studies retain only reducer state plus the
O(1) per-trial summary surface.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing import connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import faults
from ..adversary.base import Adversary
from ..errors import ConfigurationError, WorkerError
from ..protocols.base import ProtocolFactory
from ..rng import SeedLike, SeedTree, TrialSeedBatch
from .backends import (
    AUTO_BACKEND,
    COMPILED_BACKEND,
    LOCKSTEP_BACKEND,
    STUDY_BACKEND,
    STUDY_BACKENDS,
    BatchedStudyKernel,
    CompiledStudyKernel,
    LockstepStudyKernel,
    available_study_backends,
)
from .backends.studysupport import StudyProbe
from .engine import Simulator, SimulatorConfig
from .health import RunHealth, collecting, note, note_demotion
from .results import SimulationResult
from .shm import discard_payload, export_study, import_study

__all__ = [
    "SupervisorPolicy",
    "TrialRunner",
    "TrialStudy",
    "run_trials",
]

AdversaryFactory = Callable[[], Adversary]

MetricExtractor = Callable[[SimulationResult], float]
MetricLike = Union[MetricExtractor, np.ndarray]


def _extract_successes(result: SimulationResult) -> float:
    return float(result.total_successes)


def _extract_arrivals(result: SimulationResult) -> float:
    return float(result.total_arrivals)


def _extract_active_slots(result: SimulationResult) -> float:
    return float(result.total_active_slots)


def _extract_jammed_slots(result: SimulationResult) -> float:
    return float(result.total_jammed_slots)


def _extract_mean_latency(result: SimulationResult) -> float:
    return result.mean_latency()


def _extract_unfinished(result: SimulationResult) -> float:
    return float(result.unfinished_nodes)


def _extract_wall_time(result: SimulationResult) -> float:
    return result.wall_time_seconds


def _extract_slots_per_second(result: SimulationResult) -> float:
    return result.slots_per_second


@dataclass
class TrialStudy:
    """Results of a set of independent trials of the same configuration.

    ``effective_workers`` records how many worker processes actually executed
    the study (1 when a ``workers>1`` request fell back to serial execution on
    a platform without ``fork``), so reports never claim parallelism that did
    not happen.  ``from_cache`` marks studies loaded from a
    :class:`~repro.spec.StudyStore` rather than simulated; their ``results``
    are summary-level :class:`~repro.spec.CachedResult` objects.  ``health``
    is the structured :class:`~repro.sim.health.RunHealth` record of the
    run: shard retries/failures, backend demotion events with reasons,
    transport fallbacks and pool degradation (empty = clean run).
    """

    results: List[SimulationResult] = field(default_factory=list)
    label: str = ""
    effective_workers: int = 1
    from_cache: bool = False
    pipeline: Optional[Any] = None
    health: RunHealth = field(default_factory=RunHealth, compare=False)
    _metric_cache: Dict[MetricExtractor, Tuple[int, np.ndarray]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def trials(self) -> int:
        return len(self.results)

    def metric(self, extractor: MetricExtractor) -> np.ndarray:
        """Vector of a per-trial scalar metric.

        Vectors are memoized per extractor object, so repeated aggregations
        (``mean`` + ``std`` + ``quantile`` over the same extractor) run the
        extractor over the results only once.  Entries are invalidated when
        ``results`` changes length (the runner appends to it after
        construction).
        """
        entry = self._metric_cache.get(extractor)
        if entry is not None and entry[0] == len(self.results):
            return entry[1]
        values = np.asarray(
            [extractor(result) for result in self.results], dtype=float
        )
        self._metric_cache[extractor] = (len(self.results), values)
        return values

    def _values(self, metric: MetricLike) -> np.ndarray:
        if isinstance(metric, np.ndarray):
            return metric
        return self.metric(metric)

    def mean(self, metric: MetricLike) -> float:
        """Mean of a metric (an extractor or a precomputed vector)."""
        values = self._values(metric)
        return float(np.mean(values)) if values.size else float("nan")

    def std(self, metric: MetricLike) -> float:
        values = self._values(metric)
        return float(np.std(values)) if values.size else float("nan")

    def quantile(self, metric: MetricLike, q: float) -> float:
        values = self._values(metric)
        return float(np.quantile(values, q)) if values.size else float("nan")

    def metrics(self) -> Optional[Dict[str, Any]]:
        """Finalized values of the attached metric pipeline (``None`` without one)."""
        if self.pipeline is None:
            return None
        return self.pipeline.finalize()

    def memory_bytes(self) -> int:
        """Bytes retained by the per-slot prefix columns of all results.

        0 for streamed studies (columns released after reduction) and for
        cache-rehydrated studies (summaries only).
        """
        return sum(
            getattr(result, "memory_bytes", lambda: 0)() for result in self.results
        )

    def fraction_satisfying(
        self, predicate: Callable[[SimulationResult], bool]
    ) -> float:
        if not self.results:
            return float("nan")
        return sum(1 for r in self.results if predicate(r)) / len(self.results)

    def summary_row(self) -> Dict[str, float]:
        """Standard aggregate row used by experiment reports.

        Uses module-level extractors so repeated calls hit the metric cache
        instead of accumulating fresh lambda keys in it.
        """
        return {
            "trials": float(self.trials),
            "workers": float(self.effective_workers),
            "mean_successes": self.mean(_extract_successes),
            "mean_arrivals": self.mean(_extract_arrivals),
            "mean_active_slots": self.mean(_extract_active_slots),
            "mean_jammed_slots": self.mean(_extract_jammed_slots),
            "mean_latency": self.mean(_extract_mean_latency),
            "mean_unfinished": self.mean(_extract_unfinished),
            "mean_wall_time_s": self.mean(_extract_wall_time),
            "mean_slots_per_s": self.mean(_extract_slots_per_second),
            **self.health.summary_fields(),
        }


def _coerce_factories(protocol_factory, adversary_factory, horizon: int):
    """Accept declarative specs wherever factories are expected.

    :class:`~repro.spec.ProtocolSpec` / :class:`~repro.spec.AdversarySpec`
    inputs are built into the equivalent factories (the adversary spec gets
    the study horizon so horizon-dependent defaults and the proof
    adversaries resolve); plain callables pass through untouched.  Imported
    lazily — the spec package imports this module's public API.
    """
    from ..spec.adversary import AdversarySpec
    from ..spec.protocol import ProtocolSpec

    if isinstance(protocol_factory, ProtocolSpec):
        protocol_factory = protocol_factory.build()
    if isinstance(adversary_factory, AdversarySpec):
        adversary_factory = adversary_factory.factory(horizon)
    return protocol_factory, adversary_factory


def _coerce_pipeline(pipeline):
    """Accept a live :class:`~repro.metrics.MetricPipeline` or its spec.

    Imported lazily for the same reason as :func:`_coerce_factories` — both
    the metrics and spec packages import this module's public API.
    """
    if pipeline is None:
        return None
    from ..metrics.pipeline import MetricPipeline
    from ..spec.pipeline import PipelineSpec

    if isinstance(pipeline, PipelineSpec):
        return pipeline.build()
    if isinstance(pipeline, MetricPipeline):
        return pipeline
    raise ConfigurationError(
        f"pipeline must be a MetricPipeline or PipelineSpec, got {pipeline!r}"
    )


@dataclass(frozen=True)
class SupervisorPolicy:
    """How the parallel pool supervises its worker shards.

    ``timeout`` is the per-shard wall-clock budget in seconds (``None`` =
    wait forever, the historical behavior); a shard that exceeds it is
    terminated and treated as hung.  Failed shards (crash, hang, exception,
    result-import failure) are retried up to ``retries`` times with capped
    exponential backoff (``backoff_base * 2**(attempt-1)``, at most
    ``backoff_cap`` seconds).  After a hang the pool also *degrades*: its
    concurrency cap drops by one, so a machine that cannot sustain N workers
    converges toward serial execution.  When the retry budget is exhausted,
    ``degrade=True`` runs the shard in-process serially (results are still
    produced, identical seed for seed); ``degrade=False`` raises a typed
    :class:`~repro.errors.WorkerError` instead.

    ``REPRO_SHARD_TIMEOUT`` and ``REPRO_SHARD_RETRIES`` override the
    defaults process-wide (read once per :class:`TrialRunner`).
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError("supervisor timeout must be positive")
        if self.retries < 0:
            raise ConfigurationError("supervisor retries must be >= 0")

    @classmethod
    def from_env(cls) -> "SupervisorPolicy":
        timeout = os.environ.get("REPRO_SHARD_TIMEOUT")
        retries = os.environ.get("REPRO_SHARD_RETRIES")
        return cls(
            timeout=float(timeout) if timeout else None,
            retries=int(retries) if retries else 2,
        )

    def backoff(self, attempt: int) -> float:
        """Pre-retry delay before the given (1-based) re-attempt."""
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))


#: Exit code of a worker killed by an injected ``worker-crash`` fault.
_FAULT_EXIT_CODE = 23
#: How long an injected ``worker-hang`` sleeps (far past any sane timeout).
_HANG_SLEEP_SECONDS = 3600.0


@dataclass
class _ShardTask:
    """One contiguous trial range awaiting (re-)execution."""

    index: int
    chunk: List[SeedTree]
    trial_lo: int
    trial_hi: int
    attempt: int = 0
    force_pickle: bool = False


def _shard_entry(
    runner: "TrialRunner",
    chunk: List[SeedTree],
    conn,
    index: int,
    attempt: int,
    force_pickle: bool,
) -> None:
    """Worker-process entry point for one shard.

    Runs in a forked child, so the runner (with its possibly unpicklable
    closures) arrives by memory copy — nothing but the result payload ever
    crosses a pickle boundary.  Sends ``("ok", payload, pipeline, events)``
    on success or ``("error", description)`` on a deterministic exception;
    a crash sends nothing and is detected by the supervisor through the
    process sentinel.
    """
    try:
        plan = faults.active_plan()
        if plan.fires(
            "worker-crash", shard=index, attempt=attempt, trials=len(chunk)
        ):
            os._exit(_FAULT_EXIT_CODE)
        if plan.fires(
            "worker-hang", shard=index, attempt=attempt, trials=len(chunk)
        ):
            time.sleep(_HANG_SLEEP_SECONDS)
        # Each shard reduces into its own fresh pipeline clone; the parent
        # merges the returned partials in shard (= trial) order.
        shard_pipeline = (
            runner._pipeline.fresh() if runner._pipeline is not None else None
        )
        shard_health = RunHealth()
        with collecting(shard_health):
            results = runner._run_chunk(chunk, shard_pipeline)
            # Bulk columns travel through a shared-memory block (pickle only
            # carries O(1) metadata per trial); ineligible shards — and
            # retries after a parent-side attach failure — use plain pickle.
            payload = export_study(results, force_pickle=force_pickle)
        conn.send(("ok", payload, shard_pipeline, shard_health.events))
    except BaseException as exc:  # noqa: BLE001 - report, parent decides
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


class TrialRunner:
    """Runs the same (protocol, adversary, config) combination across seeds.

    The protocol and adversary are supplied either as factories (the
    callable escape hatch — adversaries hold per-run mutable state, so each
    trial gets a fresh instance) or as declarative specs
    (:class:`~repro.spec.ProtocolSpec` / :class:`~repro.spec.AdversarySpec`),
    which the runner builds into factories itself.  Both paths construct the
    same classes with the same parameters, so they are seed-for-seed
    identical.

    Parameters
    ----------
    collectors:
        Per-slot metric collectors attached to every trial's simulator (the
        legacy callback API).  Collector instances are shared across trials
        (their ``on_run_start`` hook is expected to reset them), which is why
        they require ``workers=1`` (rejected here, at construction time);
        they also force the per-trial path (the batched study kernel emits no
        per-slot records).  Prefer ``pipeline`` — it has neither restriction.
    pipeline:
        A :class:`~repro.metrics.MetricPipeline` (or
        :class:`~repro.spec.PipelineSpec`) of columnar reducers, fed every
        finished trial in order.  Runs on every backend and under
        ``workers > 1`` via ordered shard merges; exposed afterwards as
        :attr:`TrialStudy.pipeline`.
    streaming:
        Release each trial's O(horizon) prefix columns once the pipeline has
        reduced it, keeping only reducer state and O(1) summaries.
        Incompatible with ``keep_trace``.
    backend:
        Study-level backend selection (see the module docstring).
    workers:
        Number of forked worker processes; 1 means serial execution.  Trials
        are sharded contiguously across workers (batched within each shard
        when the batched study kernel applies).  Results are returned in
        trial order and are seed-for-seed identical to a serial run.
    supervisor:
        The :class:`SupervisorPolicy` governing shard timeouts, retries and
        degradation under ``workers > 1``.  Defaults to
        :meth:`SupervisorPolicy.from_env` (which honors
        ``REPRO_SHARD_TIMEOUT`` / ``REPRO_SHARD_RETRIES``).
    """

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        adversary_factory: AdversaryFactory,
        config: SimulatorConfig,
        label: str = "",
        collectors: Sequence = (),
        backend: str = AUTO_BACKEND,
        workers: int = 1,
        pipeline=None,
        streaming: bool = False,
        supervisor: Optional[SupervisorPolicy] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if backend not in available_study_backends():
            raise ConfigurationError(
                f"unknown backend {backend!r}; available: "
                f"{', '.join(available_study_backends())}"
            )
        if collectors and workers > 1:
            raise ConfigurationError(
                "collectors require workers=1: collector instances cannot be "
                "shared across worker processes (use pipeline= instead)"
            )
        if streaming and config.keep_trace:
            raise ConfigurationError(
                "streaming releases per-slot data; it cannot be combined "
                "with keep_trace"
            )
        protocol_factory, adversary_factory = _coerce_factories(
            protocol_factory, adversary_factory, config.horizon
        )
        self._protocol_factory = protocol_factory
        self._adversary_factory = adversary_factory
        self._config = config
        self._label = label
        self._collectors = list(collectors)
        self._backend = backend
        self._workers = workers
        self._pipeline = _coerce_pipeline(pipeline)
        self._streaming = streaming
        self._supervisor = supervisor or SupervisorPolicy.from_env()

    def run_single(self, seed: SeedLike) -> SimulationResult:
        """Execute one trial with the given root seed."""
        simulator = Simulator(
            protocol_factory=self._protocol_factory,
            adversary=self._adversary_factory(),
            config=self._config,
            collectors=self._collectors,
            seed=seed,
            backend=self._per_trial_backend(),
        )
        return simulator.run()

    def run(self, trials: int, seed: SeedLike = None) -> TrialStudy:
        if trials < 1:
            raise ConfigurationError("trials must be >= 1")
        seeds = TrialSeedBatch(seed, trials)
        workers = min(self._workers, trials)
        # Each run reduces into a fresh clone, so studies from consecutive
        # run() calls never share (or overwrite) each other's metrics.
        pipeline = self._pipeline.fresh() if self._pipeline is not None else None
        health = RunHealth(requested_workers=self._workers)
        study = TrialStudy(label=self._label, pipeline=pipeline, health=health)
        with collecting(health):
            if workers > 1:
                if "fork" in multiprocessing.get_all_start_methods():
                    results, shard_pipelines = self._run_parallel(
                        seeds.trees, workers, health
                    )
                    study.results.extend(results)
                    if pipeline is not None:
                        # Shards are contiguous trial ranges; merging their
                        # partials left to right reproduces the serial
                        # reduction.
                        for shard_pipeline in shard_pipelines:
                            pipeline.merge(shard_pipeline)
                    study.effective_workers = workers
                    health.effective_workers = workers
                    return study
                health.record(
                    "fallback",
                    "pool",
                    "platform lacks the 'fork' start method; running serially",
                )
                warnings.warn(
                    "workers>1 requires the 'fork' start method, which this "
                    "platform lacks; running trials serially",
                    RuntimeWarning,
                    stacklevel=2,
                )
            study.results.extend(self._run_chunk(seeds, pipeline))
        return study

    # ------------------------------------------------------------- internals

    def _per_trial_backend(self) -> str:
        """The Simulator backend used when a trial runs individually."""
        return AUTO_BACKEND if self._backend in STUDY_BACKENDS else self._backend

    def _absorb(self, result: SimulationResult, pipeline) -> SimulationResult:
        """Reduce one finished trial; in streaming mode drop its columns."""
        if pipeline is not None:
            pipeline.update(result)
        if self._streaming:
            result.release_counters()
        return result

    def _run_chunk(
        self,
        seeds: Union[List[SeedTree], TrialSeedBatch],
        pipeline=None,
    ) -> List[SimulationResult]:
        """Run a contiguous shard of trials, study-batched when eligible.

        ``auto`` walks the study ladder: batched-study first, then the
        lockstep kernel, then the per-trial path.  A study kernel that bails
        mid-eligibility (returns ``None``) never consumes trial seeds, so
        escalating to the next rung stays seed-for-seed identical.
        """
        faults.active_plan().maybe_raise("kernel", trials=len(seeds))
        protocol_name = (
            getattr(self._protocol_factory, "protocol_name", None) or "protocol"
        )
        # One probe per dispatch: every rung's eligibility questions reuse
        # the same memoized protocol/program/adversary instances instead of
        # re-invoking the factories per kernel.
        probe = StudyProbe(self._protocol_factory, self._adversary_factory)
        for kernel, explicit in (
            (BatchedStudyKernel(), STUDY_BACKEND),
            (CompiledStudyKernel(), COMPILED_BACKEND),
            (LockstepStudyKernel(), LOCKSTEP_BACKEND),
        ):
            if self._backend not in (AUTO_BACKEND, explicit):
                continue
            if (
                self._backend == AUTO_BACKEND
                and explicit in (COMPILED_BACKEND, LOCKSTEP_BACKEND)
                and not kernel.auto_preferred(
                    self._adversary_factory, self._config, len(seeds), probe
                )
            ):
                # Too little concurrent population for the lockstep tiers to
                # pay off; stay on the per-trial ladder.
                continue
            reason = kernel.unsupported_reason(
                self._protocol_factory,
                self._adversary_factory,
                self._config,
                self._collectors,
                probe,
            )
            if reason is None:
                results = kernel.run_study(
                    self._protocol_factory,
                    self._adversary_factory,
                    self._config,
                    seeds,
                    protocol_name=protocol_name,
                    probe=probe,
                )
                if results is not None:
                    return [
                        self._absorb(result, pipeline) for result in results
                    ]
                # The study bailed without consuming any trial seeds
                # (oversized block, missing probability vector, slow seed
                # path, ...): escalate down the ladder.
                note_demotion(
                    explicit,
                    "per-trial ladder",
                    "study kernel bailed at run time (oversized block, "
                    "slow seed path, or unreplicable streams)",
                )
            if self._backend == explicit:
                if reason is None:
                    # An explicitly requested study kernel that bailed
                    # degrades to the per-trial path, like ``auto`` would.
                    break
                raise ConfigurationError(
                    f"backend {explicit!r} unavailable: {reason}"
                )
        trees = seeds.trees if isinstance(seeds, TrialSeedBatch) else seeds
        return [
            self._absorb(self.run_single(trial_seed), pipeline)
            for trial_seed in trees
        ]

    def explain_backend(self, trials: int) -> List[Dict[str, str]]:
        """Dry-run the study backend ladder: per rung, would it run and why.

        Mirrors :meth:`_run_chunk`'s dispatch decisions without consuming
        seeds or executing anything.  Each row carries ``backend``,
        ``status`` (``selected`` / ``eligible`` / ``skipped`` /
        ``ineligible``) and a human ``reason``; exactly one row is
        ``selected``.  Run-time demotions (a kernel bailing mid-dispatch)
        are inherently not predictable here — they surface on the executed
        study's :class:`~repro.sim.health.RunHealth` instead.
        """
        from .backends.compiled import interpreter_mode

        probe = StudyProbe(self._protocol_factory, self._adversary_factory)
        rows: List[Dict[str, str]] = []
        selected = False
        for kernel, explicit in (
            (BatchedStudyKernel(), STUDY_BACKEND),
            (CompiledStudyKernel(), COMPILED_BACKEND),
            (LockstepStudyKernel(), LOCKSTEP_BACKEND),
        ):
            if self._backend not in (AUTO_BACKEND, explicit):
                rows.append(
                    {
                        "backend": explicit,
                        "status": "skipped",
                        "reason": f"backend={self._backend!r} requested",
                    }
                )
                continue
            if (
                self._backend == AUTO_BACKEND
                and explicit in (COMPILED_BACKEND, LOCKSTEP_BACKEND)
                and not kernel.auto_preferred(
                    self._adversary_factory, self._config, trials, probe
                )
            ):
                rows.append(
                    {
                        "backend": explicit,
                        "status": "skipped",
                        "reason": "too little concurrent population for the "
                        "lockstep tiers to amortize their per-slot cost",
                    }
                )
                continue
            reason = kernel.unsupported_reason(
                self._protocol_factory,
                self._adversary_factory,
                self._config,
                self._collectors,
                probe,
            )
            if reason is not None:
                rows.append(
                    {
                        "backend": explicit,
                        "status": "ineligible",
                        "reason": reason,
                    }
                )
                continue
            note = ""
            if explicit == COMPILED_BACKEND:
                mode = interpreter_mode()
                note = (
                    f" (interpreter mode: {mode}"
                    + (
                        "; will demote to the numpy lockstep kernel"
                        if mode == "off"
                        else ""
                    )
                    + ")"
                )
            rows.append(
                {
                    "backend": explicit,
                    "status": "eligible" if selected else "selected",
                    "reason": (
                        "shadowed by a higher rung" if selected else "first "
                        "eligible rung of the study ladder"
                    )
                    + note,
                }
            )
            selected = True
        rows.append(
            {
                "backend": f"per-trial ({self._per_trial_backend()})",
                "status": "eligible" if selected else "selected",
                "reason": "shadowed by a study kernel"
                if selected
                else "no study kernel is eligible; each trial picks its own "
                "slot kernel",
            }
        )
        return rows

    def _run_parallel(
        self, seeds: List[SeedTree], workers: int, health: RunHealth
    ) -> Tuple[List[SimulationResult], List[Any]]:
        """Dispatch contiguous shards to supervised worker processes.

        Each shard runs in its own forked process with async result
        collection, so one worker crashing or hanging can neither take the
        study down nor block it forever.  Failed shards are retried
        (identical trial ranges → identical results), hangs shrink the
        concurrency cap, and exhausted shards degrade to in-process serial
        execution (or raise :class:`~repro.errors.WorkerError` under
        ``degrade=False``).  Shard results and pipeline partials are merged
        in shard index (= trial) order regardless of completion order.
        """
        chunks = _contiguous_chunks(seeds, workers)
        policy = self._supervisor
        context = multiprocessing.get_context("fork")
        pending = deque()
        lo = 0
        for index, chunk in enumerate(chunks):
            pending.append(
                _ShardTask(index, chunk, trial_lo=lo, trial_hi=lo + len(chunk))
            )
            lo += len(chunk)
        #: sentinel -> (task, process, parent_conn, deadline)
        running: Dict[Any, Tuple[_ShardTask, Any, Any, Optional[float]]] = {}
        shard_results: Dict[int, List[SimulationResult]] = {}
        shard_pipelines: Dict[int, Any] = {}
        limit = len(chunks)
        try:
            while pending or running:
                while pending and len(running) < limit:
                    task = pending.popleft()
                    if task.attempt > policy.retries:
                        self._shard_exhausted(
                            task, policy, health, shard_results, shard_pipelines
                        )
                        continue
                    if task.attempt > 0:
                        time.sleep(policy.backoff(task.attempt))
                        health.record(
                            "retry",
                            "worker",
                            f"shard {task.index} (trials "
                            f"{task.trial_lo}..{task.trial_hi - 1}) "
                            f"re-dispatched",
                            shard=task.index,
                            attempt=task.attempt,
                        )
                    parent_conn, child_conn = context.Pipe(duplex=False)
                    process = context.Process(
                        target=_shard_entry,
                        args=(
                            self,
                            task.chunk,
                            child_conn,
                            task.index,
                            task.attempt,
                            task.force_pickle,
                        ),
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()
                    deadline = (
                        None
                        if policy.timeout is None
                        else time.monotonic() + policy.timeout
                    )
                    running[process.sentinel] = (
                        task, process, parent_conn, deadline
                    )
                if not running:
                    continue
                self._collect_ready(
                    running, pending, health, shard_results, shard_pipelines
                )
                limit = self._apply_degradation(health, limit, len(chunks))
        except BaseException:
            for _, process, conn, _ in running.values():
                _reap(process, conn)
            raise
        results = [
            result
            for index in range(len(chunks))
            for result in shard_results[index]
        ]
        pipelines = [
            shard_pipelines[index]
            for index in range(len(chunks))
            if shard_pipelines.get(index) is not None
        ]
        return results, pipelines

    def _collect_ready(
        self,
        running: Dict[Any, Tuple[_ShardTask, Any, Any, Optional[float]]],
        pending,
        health: RunHealth,
        shard_results: Dict[int, List[SimulationResult]],
        shard_pipelines: Dict[int, Any],
    ) -> None:
        """Wait for any shard event, then settle every decided shard."""
        waitables = []
        now = time.monotonic()
        wait_timeout: Optional[float] = None
        for sentinel, (_, _, conn, deadline) in running.items():
            waitables.extend((conn, sentinel))
            if deadline is not None:
                remaining = max(0.0, deadline - now)
                wait_timeout = (
                    remaining
                    if wait_timeout is None
                    else min(wait_timeout, remaining)
                )
        connection.wait(waitables, timeout=wait_timeout)
        now = time.monotonic()
        for sentinel in list(running):
            task, process, conn, deadline = running[sentinel]
            failure: Optional[Tuple[str, str]] = None
            # Liveness must be sampled BEFORE the pipe: a worker that sends
            # its result and exits between the two checks would otherwise
            # read as dead-with-empty-pipe (a phantom crash).  Observed dead
            # first, any completed send is already visible to poll().
            was_alive = process.is_alive()
            if conn.poll():
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    failure = ("crash", _exit_detail(process))
                else:
                    if message[0] == "ok":
                        _, payload, pipeline, events = message
                        plan = faults.active_plan()
                        try:
                            if plan.fires(
                                "shm-attach",
                                shard=task.index,
                                attempt=task.attempt,
                                trials=len(task.chunk),
                            ):
                                raise OSError("injected shm attach failure")
                            shard_results[task.index] = import_study(payload)
                        except Exception as exc:
                            discard_payload(payload)
                            failure = (
                                "import-error",
                                f"shard result import failed ({exc}); "
                                "retrying with the pickle transport",
                            )
                        else:
                            shard_pipelines[task.index] = pipeline
                            health.extend(list(events), shard=task.index)
                    else:
                        failure = ("error", message[1])
            elif not was_alive:
                failure = ("crash", _exit_detail(process))
            elif deadline is not None and now >= deadline:
                failure = (
                    "hang",
                    f"no result within {self._supervisor.timeout}s; "
                    "worker terminated",
                )
            else:
                continue  # still running
            del running[sentinel]
            _reap(process, conn)
            if failure is None:
                continue
            kind, detail = failure
            health.record(
                kind, "worker", detail, shard=task.index, attempt=task.attempt
            )
            pending.append(
                replace(
                    task,
                    attempt=task.attempt + 1,
                    force_pickle=task.force_pickle or kind == "import-error",
                )
            )

    def _apply_degradation(
        self, health: RunHealth, limit: int, total: int
    ) -> int:
        """Shrink the concurrency cap by one per observed hang (floor 1).

        A hang usually means the machine cannot sustain the requested degree
        of parallelism (memory pressure, CPU oversubscription), so retrying
        at the same width would likely hang again; the pool converges toward
        serial execution instead.
        """
        hangs = sum(1 for e in health.events if e.kind == "hang")
        target = max(1, total - hangs)
        if target < limit:
            health.record(
                "degrade",
                "pool",
                f"concurrency reduced to {target} after {hangs} hung "
                f"shard(s)",
            )
        return min(limit, target)

    def _shard_exhausted(
        self,
        task: _ShardTask,
        policy: SupervisorPolicy,
        health: RunHealth,
        shard_results: Dict[int, List[SimulationResult]],
        shard_pipelines: Dict[int, Any],
    ) -> None:
        """Retry budget spent: degrade to in-process execution or raise."""
        last_failure = next(
            (
                e.detail
                for e in reversed(health.events)
                if e.shard == task.index and e.kind in
                ("crash", "hang", "error", "import-error")
            ),
            "",
        )
        if not policy.degrade:
            raise WorkerError(
                f"shard {task.index} (trials {task.trial_lo}.."
                f"{task.trial_hi - 1}) failed after {task.attempt} "
                f"attempt(s)" + (f": {last_failure}" if last_failure else ""),
                shard_index=task.index,
                trial_range=(task.trial_lo, task.trial_hi),
                attempts=task.attempt,
                cause=last_failure,
            )
        health.record(
            "fallback",
            "worker",
            f"shard {task.index} degraded to in-process serial execution "
            f"after {task.attempt} failed attempt(s)",
            shard=task.index,
            attempt=task.attempt,
        )
        pipeline = (
            self._pipeline.fresh() if self._pipeline is not None else None
        )
        shard_results[task.index] = self._run_chunk(task.chunk, pipeline)
        shard_pipelines[task.index] = pipeline


def _exit_detail(process) -> str:
    """Describe how a shard process died (exit code or signal)."""
    process.join(timeout=1.0)
    code = process.exitcode
    if code is None:
        return "worker exited without reporting a result"
    if code < 0:
        return f"worker killed by signal {-code}"
    return f"worker exited with code {code} without reporting a result"


def _reap(process, conn) -> None:
    """Tear down a settled (or condemned) shard process and its pipe."""
    try:
        conn.close()
    except Exception:  # pragma: no cover - best-effort cleanup
        pass
    if process.is_alive():
        process.terminate()
        process.join(timeout=1.0)
        if process.is_alive():  # pragma: no cover - terminate() ignored
            process.kill()
            process.join(timeout=1.0)
    else:
        process.join(timeout=1.0)
    try:
        process.close()
    except Exception:  # pragma: no cover - interpreter variations
        pass


def _contiguous_chunks(seeds: List[SeedTree], workers: int) -> List[List[SeedTree]]:
    """Split seeds into at most ``workers`` contiguous, near-even shards."""
    count = len(seeds)
    workers = min(workers, count)
    bounds = np.linspace(0, count, workers + 1).astype(int)
    return [
        list(seeds[lo:hi]) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


def run_trials(
    protocol_factory: ProtocolFactory,
    adversary_factory: AdversaryFactory,
    horizon: int,
    trials: int = 5,
    seed: SeedLike = None,
    keep_trace: bool = False,
    stop_when_drained: bool = False,
    label: str = "",
    collectors: Optional[Sequence] = None,
    backend: str = AUTO_BACKEND,
    workers: int = 1,
    pipeline=None,
    streaming: bool = False,
    supervisor: Optional[SupervisorPolicy] = None,
) -> TrialStudy:
    """Convenience wrapper: build the config and runner and execute the trials.

    ``protocol_factory`` / ``adversary_factory`` accept either plain
    callables or declarative specs (:class:`~repro.spec.ProtocolSpec` /
    :class:`~repro.spec.AdversarySpec`); see :class:`TrialRunner`.  For a
    fully declarative entry point use :meth:`repro.spec.StudySpec.run`.
    """
    config = SimulatorConfig(
        horizon=horizon,
        keep_trace=keep_trace,
        stop_when_drained=stop_when_drained,
    )
    runner = TrialRunner(
        protocol_factory,
        adversary_factory,
        config,
        label=label,
        collectors=collectors or (),
        backend=backend,
        workers=workers,
        pipeline=pipeline,
        streaming=streaming,
        supervisor=supervisor,
    )
    return runner.run(trials=trials, seed=seed)
