"""Multi-trial runner: repeat a simulation with independent seeds and aggregate.

Trials are independent by construction (each gets its own root seed from
:func:`repro.rng.trial_seeds`), which makes them embarrassingly parallel: pass
``workers=N`` to fan trials out over ``N`` forked worker processes.  Seeds are
derived identically in the serial and parallel paths, so a parallel study is
seed-for-seed identical to a serial one — only wall-clock changes.
"""

from __future__ import annotations

import multiprocessing
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..adversary.base import Adversary
from ..errors import ConfigurationError
from ..protocols.base import ProtocolFactory
from ..rng import SeedLike, SeedTree, trial_seeds
from .engine import Simulator, SimulatorConfig
from .results import SimulationResult

__all__ = ["TrialRunner", "TrialStudy", "run_trials"]

AdversaryFactory = Callable[[], Adversary]


@dataclass
class TrialStudy:
    """Results of a set of independent trials of the same configuration."""

    results: List[SimulationResult] = field(default_factory=list)
    label: str = ""

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def trials(self) -> int:
        return len(self.results)

    def metric(self, extractor: Callable[[SimulationResult], float]) -> np.ndarray:
        """Vector of a per-trial scalar metric."""
        return np.asarray([extractor(result) for result in self.results], dtype=float)

    def mean(self, extractor: Callable[[SimulationResult], float]) -> float:
        values = self.metric(extractor)
        return float(np.mean(values)) if values.size else float("nan")

    def std(self, extractor: Callable[[SimulationResult], float]) -> float:
        values = self.metric(extractor)
        return float(np.std(values)) if values.size else float("nan")

    def quantile(
        self, extractor: Callable[[SimulationResult], float], q: float
    ) -> float:
        values = self.metric(extractor)
        return float(np.quantile(values, q)) if values.size else float("nan")

    def fraction_satisfying(
        self, predicate: Callable[[SimulationResult], bool]
    ) -> float:
        if not self.results:
            return float("nan")
        return sum(1 for r in self.results if predicate(r)) / len(self.results)

    def summary_row(self) -> Dict[str, float]:
        """Standard aggregate row used by experiment reports."""
        return {
            "trials": float(self.trials),
            "mean_successes": self.mean(lambda r: r.total_successes),
            "mean_arrivals": self.mean(lambda r: r.total_arrivals),
            "mean_active_slots": self.mean(lambda r: r.total_active_slots),
            "mean_jammed_slots": self.mean(lambda r: r.total_jammed_slots),
            "mean_latency": self.mean(lambda r: r.mean_latency()),
            "mean_unfinished": self.mean(lambda r: r.unfinished_nodes),
            "mean_wall_time_s": self.mean(lambda r: r.wall_time_seconds),
            "mean_slots_per_s": self.mean(lambda r: r.slots_per_second),
        }


# Per-worker state, set by the pool initializer.  With the "fork" start
# method initargs reach the child by memory copy, so unpicklable
# protocol/adversary factories (closures) never cross a pickle boundary —
# only the integer trial index travels through the task queue.  Binding the
# state per pool (rather than in the parent before forking) keeps concurrent
# TrialRunner.run calls from seeing each other's trials.
_PARALLEL_STATE: Optional[Tuple["TrialRunner", List[SeedTree]]] = None


def _init_trial_worker(runner: "TrialRunner", seeds: List[SeedTree]) -> None:
    global _PARALLEL_STATE
    _PARALLEL_STATE = (runner, seeds)


def _run_trial_by_index(index: int) -> SimulationResult:
    assert _PARALLEL_STATE is not None, "worker started without parallel state"
    runner, seeds = _PARALLEL_STATE
    return runner.run_single(seeds[index])


class TrialRunner:
    """Runs the same (protocol, adversary, config) combination across seeds.

    The adversary is supplied as a factory because many adversaries hold
    per-run mutable state (schedules, budgets); each trial gets a fresh
    instance and an independent seed.

    Parameters
    ----------
    collectors:
        Metric collectors attached to every trial's simulator.  Collector
        instances are shared across trials (their ``on_run_start`` hook is
        expected to reset them), which is why they require ``workers=1``.
    backend:
        Slot kernel selection forwarded to every :class:`Simulator`.
    workers:
        Number of forked worker processes; 1 means serial execution.  Results
        are returned in trial order and are seed-for-seed identical to a
        serial run.
    """

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        adversary_factory: AdversaryFactory,
        config: SimulatorConfig,
        label: str = "",
        collectors: Sequence = (),
        backend: str = "auto",
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self._protocol_factory = protocol_factory
        self._adversary_factory = adversary_factory
        self._config = config
        self._label = label
        self._collectors = list(collectors)
        self._backend = backend
        self._workers = workers

    def run_single(self, seed: SeedLike) -> SimulationResult:
        """Execute one trial with the given root seed."""
        simulator = Simulator(
            protocol_factory=self._protocol_factory,
            adversary=self._adversary_factory(),
            config=self._config,
            collectors=self._collectors,
            seed=seed,
            backend=self._backend,
        )
        return simulator.run()

    def run(self, trials: int, seed: SeedLike = None) -> TrialStudy:
        if trials < 1:
            raise ConfigurationError("trials must be >= 1")
        seeds = trial_seeds(seed, trials)
        workers = min(self._workers, trials)
        study = TrialStudy(label=self._label)
        if workers > 1:
            if "fork" in multiprocessing.get_all_start_methods():
                if self._collectors:
                    raise ConfigurationError(
                        "collectors require workers=1: collector instances "
                        "cannot be shared across worker processes"
                    )
                study.results.extend(self._run_parallel(seeds, workers))
                return study
            warnings.warn(
                "workers>1 requires the 'fork' start method, which this "
                "platform lacks; running trials serially",
                RuntimeWarning,
                stacklevel=2,
            )
        for trial_seed in seeds:
            study.results.append(self.run_single(trial_seed))
        return study

    def _run_parallel(
        self, seeds: List[SeedTree], workers: int
    ) -> List[SimulationResult]:
        context = multiprocessing.get_context("fork")
        with context.Pool(
            processes=workers,
            initializer=_init_trial_worker,
            initargs=(self, seeds),
        ) as pool:
            return pool.map(_run_trial_by_index, range(len(seeds)))


def run_trials(
    protocol_factory: ProtocolFactory,
    adversary_factory: AdversaryFactory,
    horizon: int,
    trials: int = 5,
    seed: SeedLike = None,
    keep_trace: bool = False,
    stop_when_drained: bool = False,
    label: str = "",
    collectors: Optional[Sequence] = None,
    backend: str = "auto",
    workers: int = 1,
) -> TrialStudy:
    """Convenience wrapper: build the config and runner and execute the trials."""
    config = SimulatorConfig(
        horizon=horizon,
        keep_trace=keep_trace,
        stop_when_drained=stop_when_drained,
    )
    runner = TrialRunner(
        protocol_factory,
        adversary_factory,
        config,
        label=label,
        collectors=collectors or (),
        backend=backend,
        workers=workers,
    )
    return runner.run(trials=trials, seed=seed)
