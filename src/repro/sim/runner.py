"""Multi-trial runner: repeat a simulation with independent seeds and aggregate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..adversary.base import Adversary
from ..errors import ConfigurationError
from ..protocols.base import ProtocolFactory
from ..rng import SeedLike, trial_seeds
from .engine import Simulator, SimulatorConfig
from .results import SimulationResult

__all__ = ["TrialRunner", "TrialStudy", "run_trials"]

AdversaryFactory = Callable[[], Adversary]


@dataclass
class TrialStudy:
    """Results of a set of independent trials of the same configuration."""

    results: List[SimulationResult] = field(default_factory=list)
    label: str = ""

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def trials(self) -> int:
        return len(self.results)

    def metric(self, extractor: Callable[[SimulationResult], float]) -> np.ndarray:
        """Vector of a per-trial scalar metric."""
        return np.asarray([extractor(result) for result in self.results], dtype=float)

    def mean(self, extractor: Callable[[SimulationResult], float]) -> float:
        values = self.metric(extractor)
        return float(np.mean(values)) if values.size else float("nan")

    def std(self, extractor: Callable[[SimulationResult], float]) -> float:
        values = self.metric(extractor)
        return float(np.std(values)) if values.size else float("nan")

    def quantile(
        self, extractor: Callable[[SimulationResult], float], q: float
    ) -> float:
        values = self.metric(extractor)
        return float(np.quantile(values, q)) if values.size else float("nan")

    def fraction_satisfying(
        self, predicate: Callable[[SimulationResult], bool]
    ) -> float:
        if not self.results:
            return float("nan")
        return sum(1 for r in self.results if predicate(r)) / len(self.results)

    def summary_row(self) -> Dict[str, float]:
        """Standard aggregate row used by experiment reports."""
        return {
            "trials": float(self.trials),
            "mean_successes": self.mean(lambda r: r.total_successes),
            "mean_arrivals": self.mean(lambda r: r.total_arrivals),
            "mean_active_slots": self.mean(lambda r: r.total_active_slots),
            "mean_jammed_slots": self.mean(lambda r: r.total_jammed_slots),
            "mean_latency": self.mean(lambda r: r.mean_latency()),
            "mean_unfinished": self.mean(lambda r: r.unfinished_nodes),
        }


class TrialRunner:
    """Runs the same (protocol, adversary, config) combination across seeds.

    The adversary is supplied as a factory because many adversaries hold
    per-run mutable state (schedules, budgets); each trial gets a fresh
    instance and an independent seed.
    """

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        adversary_factory: AdversaryFactory,
        config: SimulatorConfig,
        label: str = "",
    ) -> None:
        self._protocol_factory = protocol_factory
        self._adversary_factory = adversary_factory
        self._config = config
        self._label = label

    def run(self, trials: int, seed: SeedLike = None) -> TrialStudy:
        if trials < 1:
            raise ConfigurationError("trials must be >= 1")
        study = TrialStudy(label=self._label)
        for trial_seed in trial_seeds(seed, trials):
            simulator = Simulator(
                protocol_factory=self._protocol_factory,
                adversary=self._adversary_factory(),
                config=self._config,
                seed=trial_seed,
            )
            study.results.append(simulator.run())
        return study


def run_trials(
    protocol_factory: ProtocolFactory,
    adversary_factory: AdversaryFactory,
    horizon: int,
    trials: int = 5,
    seed: SeedLike = None,
    keep_trace: bool = False,
    stop_when_drained: bool = False,
    label: str = "",
    collectors: Optional[Sequence] = None,
) -> TrialStudy:
    """Convenience wrapper: build the config and runner and execute the trials."""
    config = SimulatorConfig(
        horizon=horizon,
        keep_trace=keep_trace,
        stop_when_drained=stop_when_drained,
    )
    runner = TrialRunner(protocol_factory, adversary_factory, config, label=label)
    return runner.run(trials=trials, seed=seed)
