"""Structured health reporting for study execution.

Every :class:`~repro.sim.TrialStudy` now carries a :class:`RunHealth`
record: shard retries and failures, backend demotion events with their
reasons, transport fallbacks, and the effective degree of parallelism.
What used to be silent — the compiled tier quietly demoting to the numpy
lockstep kernel, a study kernel bailing to the per-trial ladder, shared
memory falling back to pickle — is recorded here and surfaced through
``TrialStudy.summary_row()``, ``repro sweep`` output and
``repro simulate --explain-backend``.

Deeply nested code (kernel dispatch, the shm transport) reports through a
context-local collector rather than threading a ``health`` parameter
through every signature: the runner installs its study's record with
:func:`collecting`, and :func:`note` / :func:`note_demotion` append to
whichever record is active (no-ops otherwise).  Worker processes collect
into their own record and ship the events back to the parent alongside the
shard results.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "HealthEvent",
    "RunHealth",
    "collecting",
    "note",
    "note_demotion",
]

#: Event kinds counted as shard failures by :attr:`RunHealth.shard_failures`.
_FAILURE_KINDS = ("crash", "hang", "error", "import-error")


@dataclass(frozen=True)
class HealthEvent:
    """One thing that went wrong (or was silently worked around) during a run.

    ``kind`` is one of: ``crash`` / ``hang`` / ``error`` / ``import-error``
    (shard failures), ``retry`` (a shard re-dispatched), ``degrade`` (the
    pool reduced its concurrency), ``fallback`` (a shard ran in-process, or
    a transport fell back to pickle), ``demotion`` (a backend handed the
    study to a slower tier), ``quarantine`` (a corrupt store entry was
    moved aside), ``shard-loss`` (a sharded-store shard was unreadable or
    missing: reads degraded to misses, writes to no-ops).
    """

    kind: str
    site: str
    detail: str = ""
    shard: Optional[int] = None
    attempt: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind, "site": self.site}
        if self.detail:
            data["detail"] = self.detail
        if self.shard is not None:
            data["shard"] = self.shard
        if self.attempt is not None:
            data["attempt"] = self.attempt
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HealthEvent":
        return cls(
            kind=str(data.get("kind", "")),
            site=str(data.get("site", "")),
            detail=str(data.get("detail", "")),
            shard=data.get("shard"),
            attempt=data.get("attempt"),
        )


@dataclass
class RunHealth:
    """Aggregated execution-health record of one study run."""

    events: List[HealthEvent] = field(default_factory=list)
    requested_workers: int = 1
    effective_workers: int = 1

    def record(
        self,
        kind: str,
        site: str,
        detail: str = "",
        shard: Optional[int] = None,
        attempt: Optional[int] = None,
    ) -> HealthEvent:
        event = HealthEvent(
            kind=kind, site=site, detail=detail, shard=shard, attempt=attempt
        )
        self.events.append(event)
        return event

    def extend(
        self, events: List[HealthEvent], shard: Optional[int] = None
    ) -> None:
        """Absorb a worker's events, annotating them with its shard index."""
        for event in events:
            if shard is not None and event.shard is None:
                event = replace(event, shard=shard)
            self.events.append(event)

    # ----------------------------------------------------------- aggregates

    @property
    def retries(self) -> int:
        return sum(1 for e in self.events if e.kind == "retry")

    @property
    def shard_failures(self) -> int:
        return sum(1 for e in self.events if e.kind in _FAILURE_KINDS)

    @property
    def demotions(self) -> List[HealthEvent]:
        return [e for e in self.events if e.kind == "demotion"]

    @property
    def fallbacks(self) -> List[HealthEvent]:
        return [e for e in self.events if e.kind == "fallback"]

    @property
    def shard_losses(self) -> List[HealthEvent]:
        return [e for e in self.events if e.kind == "shard-loss"]

    @property
    def degraded(self) -> bool:
        return any(e.kind in ("degrade", "fallback") for e in self.events)

    @property
    def clean(self) -> bool:
        return not self.events

    def summary_fields(self) -> Dict[str, float]:
        """Numeric health columns merged into ``TrialStudy.summary_row()``."""
        return {
            "health_retries": float(self.retries),
            "health_failures": float(self.shard_failures),
            "health_demotions": float(len(self.demotions)),
        }

    def describe(self) -> str:
        """One human line: 'clean' or the grouped event counts and reasons."""
        if self.clean:
            return "clean"
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        parts = [f"{kind}×{count}" for kind, count in sorted(counts.items())]
        reasons = sorted(
            {f"{e.site}: {e.detail}" for e in self.events if e.detail}
        )
        text = ", ".join(parts)
        if reasons:
            text += " (" + "; ".join(reasons) + ")"
        return text

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requested_workers": self.requested_workers,
            "effective_workers": self.effective_workers,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunHealth":
        return cls(
            events=[HealthEvent.from_dict(e) for e in data.get("events", [])],
            requested_workers=int(data.get("requested_workers", 1)),
            effective_workers=int(data.get("effective_workers", 1)),
        )


#: The record deep library code reports into (None outside a collected run).
_ACTIVE: ContextVar[Optional[RunHealth]] = ContextVar(
    "repro-run-health", default=None
)


@contextmanager
def collecting(health: RunHealth):
    """Route :func:`note` / :func:`note_demotion` calls into ``health``."""
    token = _ACTIVE.set(health)
    try:
        yield health
    finally:
        _ACTIVE.reset(token)


def note(
    kind: str,
    site: str,
    detail: str = "",
    shard: Optional[int] = None,
    attempt: Optional[int] = None,
) -> None:
    """Record an event on the active health record, if any (else a no-op)."""
    health = _ACTIVE.get()
    if health is not None:
        health.record(kind, site, detail, shard=shard, attempt=attempt)


def note_demotion(from_backend: str, to_backend: str, reason: str) -> None:
    """Record a backend demotion event with its reason."""
    note("demotion", from_backend, f"demoted to {to_backend}: {reason}")
