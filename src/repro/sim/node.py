"""Node wrapper: one arriving player with its protocol instance and statistics."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..protocols.base import Protocol
from ..types import Feedback, NodeId, NodeStats

__all__ = ["Node"]


class Node:
    """A player in the system: a single message plus a protocol instance.

    The node joins at the beginning of its arrival slot, runs its protocol
    every slot until its own message is transmitted successfully, then leaves
    immediately (per the model).
    """

    def __init__(
        self,
        node_id: NodeId,
        arrival_slot: int,
        protocol: Protocol,
        rng: np.random.Generator,
    ) -> None:
        self._id = node_id
        self._protocol = protocol
        self._rng = rng
        self._stats = NodeStats(node_id=node_id, arrival_slot=arrival_slot)
        self._active = True
        protocol.on_arrival(arrival_slot, rng)

    @property
    def node_id(self) -> NodeId:
        return self._id

    @property
    def protocol(self) -> Protocol:
        return self._protocol

    @property
    def stats(self) -> NodeStats:
        return self._stats

    @property
    def active(self) -> bool:
        return self._active

    @property
    def arrival_slot(self) -> int:
        return self._stats.arrival_slot

    def decide_broadcast(self, slot: int) -> bool:
        """Ask the protocol whether to broadcast in ``slot``."""
        if not self._active:
            return False
        broadcast = bool(self._protocol.wants_to_broadcast(slot))
        if broadcast:
            self._stats.broadcast_count += 1
        return broadcast

    def deliver_feedback(
        self,
        slot: int,
        feedback: Feedback,
        broadcast: bool,
        successful_node: Optional[NodeId],
    ) -> None:
        """Deliver the slot's feedback; deactivate the node if it just succeeded."""
        if not self._active:
            return
        success_was_own = successful_node == self._id
        self._protocol.on_feedback(slot, feedback, broadcast, success_was_own)
        if success_was_own:
            self._stats.success_slot = slot
            self._active = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "active" if self._active else "done"
        return f"Node(id={self._id}, arrived={self.arrival_slot}, {state})"
