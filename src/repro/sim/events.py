"""Event trace: optional detailed per-slot history of a simulation."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from ..types import SlotOutcome, SlotRecord

__all__ = ["EventTrace"]


class EventTrace:
    """Append-only list of :class:`~repro.types.SlotRecord` with query helpers.

    Traces can be large (one record per slot), so the simulator only keeps them
    when asked to (``SimulatorConfig.keep_trace``).  The helpers below cover
    the queries the experiments and tests need: success slots, active-slot
    prefixes, windows, and per-interval statistics.
    """

    def __init__(self) -> None:
        self._records: List[SlotRecord] = []

    def append(self, record: SlotRecord) -> None:
        if self._records and record.slot != self._records[-1].slot + 1:
            raise ValueError("slot records must be appended in order")
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SlotRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> SlotRecord:
        return self._records[index]

    @property
    def records(self) -> Sequence[SlotRecord]:
        return tuple(self._records)

    def record_for_slot(self, slot: int) -> SlotRecord:
        """Return the record of 1-based global ``slot``."""
        record = self._records[slot - 1]
        if record.slot != slot:
            raise ValueError("trace is not aligned with slot numbering")
        return record

    def success_slots(self) -> List[int]:
        return [r.slot for r in self._records if r.outcome is SlotOutcome.SUCCESS]

    def jammed_slots(self) -> List[int]:
        return [r.slot for r in self._records if r.jammed]

    def active_slot_count(self, up_to: Optional[int] = None) -> int:
        """Number of active slots among the first ``up_to`` slots (default: all)."""
        records = self._records if up_to is None else self._records[:up_to]
        return sum(1 for r in records if r.is_active)

    def arrivals_count(self, up_to: Optional[int] = None) -> int:
        records = self._records if up_to is None else self._records[:up_to]
        return sum(r.arrivals for r in records)

    def jammed_count(self, up_to: Optional[int] = None) -> int:
        records = self._records if up_to is None else self._records[:up_to]
        return sum(1 for r in records if r.jammed)

    def successes_count(self, up_to: Optional[int] = None) -> int:
        records = self._records if up_to is None else self._records[:up_to]
        return sum(1 for r in records if r.outcome is SlotOutcome.SUCCESS)

    def first_success_slot(self) -> Optional[int]:
        for record in self._records:
            if record.outcome is SlotOutcome.SUCCESS:
                return record.slot
        return None

    def successes_in_window(self, start: int, end: int) -> int:
        """Number of successes in slots ``[start, end]`` (1-based, inclusive)."""
        if start < 1 or end < start:
            raise ValueError("invalid window")
        window = self._records[start - 1 : end]
        return sum(1 for r in window if r.outcome is SlotOutcome.SUCCESS)
