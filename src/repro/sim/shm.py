"""Shared-memory transport for parallel study results.

``workers=N`` forks the trial runner; historically every worker's results
travelled back through the pool's pickle pipe — O(trials × horizon) int64
prefix columns serialized byte by byte.  This module moves the bulk numeric
payload through one ``multiprocessing.shared_memory`` block per worker
instead: the worker lays every result's four prefix columns and per-node
outcome arrays into the block, and the parent re-wraps them as zero-copy
numpy views.  Only O(1) metadata per trial (summaries, names, provenance)
still crosses the pickle boundary.

Results that carry non-columnar payloads (released counters in streaming
mode, retained event traces) fall back to the plain pickle path unchanged —
correctness never depends on the transport.  The same fallback fires when
shared-memory staging itself fails (segment creation denied, ``/dev/shm``
full, an injected ``shm-export`` fault): the shard is re-exported through
pickle and a ``fallback`` event is recorded on the run's health.  A *parent*
-side attach failure is handled one level up — the supervised pool retries
the shard with the pickle transport forced (``force_pickle=True``).

Lifecycle: the worker copies into the block, closes its mapping and
unregisters the segment from its ``resource_tracker`` (the parent owns
cleanup).  The parent attaches, **unlinks immediately** — the segment then
lives exactly as long as the parent's mappings — and pins the mapping on
each rehydrated result (``_shm_block``) so views stay valid for the study's
lifetime.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Any, Dict, List, Tuple

import numpy as np

from .. import faults
from ..types import NodeStats
from . import health
from .results import PrefixCounters, SimulationResult

try:  # pragma: no cover - stdlib, but keep the transport optional
    from multiprocessing import resource_tracker
except Exception:  # pragma: no cover
    resource_tracker = None

__all__ = ["discard_payload", "export_study", "import_study"]

#: Prefix columns per result, in PrefixCounters order.
_PREFIX_FIELDS = ("active", "arrivals", "jammed", "successes")
#: Per-node int64 arrays per result: node id, arrival slot, success slot
#: (-1 encodes "unfinished"), broadcast count.
_NODE_FIELDS = 4


class _PinnedBlock(shared_memory.SharedMemory):
    """An attached segment whose mapping outlives interpreter teardown.

    The parent hands out zero-copy numpy views into the mapping, so
    ``close()`` would raise ``BufferError`` for as long as any view is
    alive.  The segment is already unlinked; letting the OS reclaim the
    mapping at process exit is the intended lifecycle.
    """

    def close(self) -> None:  # pragma: no cover - exercised at GC/shutdown
        try:
            super().close()
        except BufferError:
            pass


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach the segment from this process's resource tracker.

    The tracker would otherwise unlink the segment when its owning process
    exits; ownership is transferred explicitly (worker → parent), so
    tracking is disabled on both sides.
    """
    if resource_tracker is None:
        return
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variations across versions
        pass


def export_study(results: List[SimulationResult], force_pickle: bool = False):
    """Pack a worker shard for the trip back to the parent.

    Returns ``("shm", name, headers)`` with the numeric payload staged in a
    shared-memory block, or ``("pickle", results)`` when any result cannot
    be laid out columnar (streamed-away counters, retained traces), when
    ``force_pickle`` is set (a supervisor retry after a parent-side attach
    failure), or when shared-memory staging itself fails — the caller sends
    the returned tuple through the pool either way.
    """
    if force_pickle or not results or any(
        result.counters is None or result.trace is not None
        for result in results
    ):
        return ("pickle", results)
    try:
        return _export_shm(results)
    except Exception as exc:
        health.note(
            "fallback", "shm", f"shared-memory export failed ({exc}); using pickle"
        )
        return ("pickle", results)


def _export_shm(results: List[SimulationResult]):
    faults.active_plan().maybe_raise("shm-export", trials=len(results))
    headers: List[Dict[str, Any]] = []
    total_words = 0
    for result in results:
        prefix_len = len(result.counters)
        node_count = len(result.node_stats)
        headers.append(
            {
                "summary": result.summary,
                "protocol_name": result.protocol_name,
                "adversary_name": result.adversary_name,
                "horizon": result.horizon,
                "seed": result.seed,
                "extra": result.extra,
                "backend": result.backend,
                "wall_time_seconds": result.wall_time_seconds,
                "prefix_len": prefix_len,
                "node_count": node_count,
            }
        )
        total_words += len(_PREFIX_FIELDS) * prefix_len
        total_words += _NODE_FIELDS * node_count

    shm = shared_memory.SharedMemory(
        create=True, size=max(8, total_words * 8)
    )
    try:
        block = np.frombuffer(shm.buf, dtype=np.int64)
        cursor = 0
        for result in results:
            counters = result.counters
            for name in _PREFIX_FIELDS:
                column = getattr(counters, name)
                block[cursor : cursor + column.shape[0]] = column
                cursor += column.shape[0]
            stats = list(result.node_stats.values())
            count = len(stats)
            for offset, value in enumerate(
                (
                    [s.node_id for s in stats],
                    [s.arrival_slot for s in stats],
                    [
                        -1 if s.success_slot is None else s.success_slot
                        for s in stats
                    ],
                    [s.broadcast_count for s in stats],
                )
            ):
                block[cursor + offset * count : cursor + (offset + 1) * count] = value
            cursor += _NODE_FIELDS * count
        name = shm.name
        del block
    except BaseException:
        # Failed mid-stage: nobody will ever attach, so unlink here rather
        # than leak the segment (the caller falls back to pickle).
        try:
            shm.unlink()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
    finally:
        _untrack(shm)
        shm.close()
    return ("shm", name, headers)


def discard_payload(payload) -> None:
    """Release a staged shm payload that will never be imported.

    Used by the supervised pool when the parent-side attach (or rehydration)
    fails: the worker has already detached and untracked the segment, so
    without this the block would outlive the study.  Best effort — a segment
    that cannot be attached cannot be freed early and falls to the OS.
    """
    if not payload or payload[0] != "shm":
        return
    try:
        segment = shared_memory.SharedMemory(name=payload[1])
    except Exception:
        return
    try:
        segment.unlink()
    finally:
        segment.close()


def import_study(payload) -> List[SimulationResult]:
    """Rehydrate a worker shard in the parent (zero-copy for shm payloads)."""
    kind = payload[0]
    if kind == "pickle":
        return payload[1]
    _, name, headers = payload
    shm = _PinnedBlock(name=name)
    # Unlink now (which also unregisters the parent's tracker entry): the
    # segment survives exactly as long as mappings exist, so a crash after
    # this point cannot leak it.
    shm.unlink()
    block = np.frombuffer(shm.buf, dtype=np.int64)
    cursor = 0
    results: List[SimulationResult] = []
    for header in headers:
        prefix_len = header["prefix_len"]
        columns = {}
        for field in _PREFIX_FIELDS:
            columns[field] = block[cursor : cursor + prefix_len]
            cursor += prefix_len
        count = header["node_count"]
        per_node: Tuple[np.ndarray, ...] = tuple(
            block[cursor + offset * count : cursor + (offset + 1) * count]
            for offset in range(_NODE_FIELDS)
        )
        cursor += _NODE_FIELDS * count
        ids, arrivals, successes, broadcasts = (
            column.tolist() for column in per_node
        )
        node_stats = {
            node_id: NodeStats(
                node_id=node_id,
                arrival_slot=arrivals[i],
                success_slot=None if successes[i] < 0 else successes[i],
                broadcast_count=broadcasts[i],
            )
            for i, node_id in enumerate(ids)
        }
        result = SimulationResult(
            summary=header["summary"],
            node_stats=node_stats,
            counters=PrefixCounters(**columns),
            protocol_name=header["protocol_name"],
            adversary_name=header["adversary_name"],
            horizon=header["horizon"],
            seed=header["seed"],
            extra=header["extra"],
            backend=header["backend"],
            wall_time_seconds=header["wall_time_seconds"],
        )
        # Pin the mapping: the counters are views into it.
        result._shm_block = shm
        results.append(result)
    return results
