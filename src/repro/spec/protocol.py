"""Declarative protocol specs and the protocol registry.

A :class:`ProtocolSpec` is a ``(kind, params)`` pair naming one entry of
:data:`PROTOCOLS`.  Building it yields the protocol *factory* the simulator
consumes (fresh instance per arriving node); the factory carries the spec on
its ``spec`` attribute so downstream code (result provenance, sweep labels)
can recover it without re-deriving anything.

Every protocol class in :mod:`repro.protocols` / :mod:`repro.core` that can
be described by JSON data registers here and implements
``Protocol.spec_params()``; the only exception is
:class:`~repro.protocols.fixed_probability.FixedProbabilityProtocol`, whose
constructor takes an arbitrary Python callable (use the registered
``log-uniform-fixed`` variant, or the callable escape hatch of
:func:`repro.sim.run_trials`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

from ..core import AlgorithmParameters, cjz_factory
from ..errors import SpecError
from ..protocols import (
    BackonBackoffCD,
    LogUniformFixedProtocol,
    PolynomialBackoff,
    ProbabilityBackoff,
    SawtoothBackoff,
    SlottedAloha,
    TwoChannelNoJamming,
    WindowedBinaryExponentialBackoff,
    make_factory,
)
from ..protocols.base import ProtocolFactory
from .registry import ParamField, SpecRegistry

__all__ = ["PROTOCOLS", "ProtocolSpec"]

PROTOCOLS = SpecRegistry("protocol")


def _optional_int(value: Any) -> Any:
    return None if value is None else int(value)


PROTOCOLS.register(
    "cjz",
    lambda p: cjz_factory(AlgorithmParameters.from_spec_params(p)),
    params=(
        ParamField("g", "rate", {"kind": "constant", "params": {"value": 4.0}}),
        ParamField("a", "float", 1.0),
        ParamField("c2", "float", 1.0),
        ParamField("c3", "float", 4.0),
    ),
    description="the paper's three-phase algorithm, parameterized by the jamming budget g",
)
PROTOCOLS.register(
    "cjz-global-clock",
    lambda p: cjz_factory(AlgorithmParameters.from_spec_params(p), global_clock=True),
    params=(
        ParamField("g", "rate", {"kind": "constant", "params": {"value": 4.0}}),
        ParamField("a", "float", 1.0),
        ParamField("c2", "float", 1.0),
        ParamField("c3", "float", 4.0),
    ),
    description="global-clock ablation of the paper's algorithm (skips Phase 1)",
)
PROTOCOLS.register(
    "two-channel-no-jamming",
    lambda p: make_factory(
        TwoChannelNoJamming,
        backoff_sends_per_stage=float(p.get("backoff_sends_per_stage", 2.0)),
        c3=float(p.get("c3", 4.0)),
    ),
    params=(
        ParamField("backoff_sends_per_stage", "float", 2.0),
        ParamField("c3", "float", 4.0),
    ),
    description="the framework with a constant per-stage budget (no-jamming regime)",
)
PROTOCOLS.register(
    "binary-exponential-backoff",
    lambda p: make_factory(
        WindowedBinaryExponentialBackoff,
        initial_window=int(p.get("initial_window", 2)),
        max_window=_optional_int(p.get("max_window")),
    ),
    params=(
        ParamField("initial_window", "int", 2),
        ParamField("max_window", "int", None),
    ),
    description="Ethernet-style windowed binary exponential backoff",
)
PROTOCOLS.register(
    "probability-backoff",
    lambda p: make_factory(ProbabilityBackoff, scale=float(p.get("scale", 1.0))),
    params=(ParamField("scale", "float", 1.0),),
    description="broadcast with probability min(1, scale/i) in the i-th active slot",
)
PROTOCOLS.register(
    "polynomial-backoff",
    lambda p: make_factory(
        PolynomialBackoff,
        degree=float(p.get("degree", 2.0)),
        initial_window=int(p.get("initial_window", 2)),
    ),
    params=(
        ParamField("degree", "float", 2.0),
        ParamField("initial_window", "int", 2),
    ),
    description="windowed backoff with window (failures+1)^degree",
)
PROTOCOLS.register(
    "sawtooth-backoff",
    lambda p: make_factory(
        SawtoothBackoff,
        initial_window=int(p.get("initial_window", 4)),
        max_window=_optional_int(p.get("max_window")),
    ),
    params=(
        ParamField("initial_window", "int", 4),
        ParamField("max_window", "int", None),
    ),
    description="repeated doubling runs ramping the sending probability to 1/2",
)
PROTOCOLS.register(
    "slotted-aloha",
    lambda p: make_factory(SlottedAloha, probability=float(p.get("probability", 0.1))),
    params=(ParamField("probability", "float", 0.1),),
    description="constant sending probability (the naive baseline)",
)
PROTOCOLS.register(
    "log-uniform-fixed",
    lambda p: make_factory(LogUniformFixedProtocol, scale=float(p.get("scale", 1.0))),
    params=(ParamField("scale", "float", 1.0),),
    description="non-adaptive slow-decay sequence min(1, scale*log(i+1)/(i+1))",
)
PROTOCOLS.register(
    "backon-backoff-cd",
    lambda p: make_factory(
        BackonBackoffCD,
        initial_probability=float(p.get("initial_probability", 0.5)),
        backoff_factor=float(p.get("backoff_factor", 0.5)),
        backon_factor=float(p.get("backon_factor", 1.2)),
        min_probability=float(p.get("min_probability", 1e-6)),
        max_probability=float(p.get("max_probability", 1.0)),
    ),
    params=(
        ParamField("initial_probability", "float", 0.5),
        ParamField("backoff_factor", "float", 0.5),
        ParamField("backon_factor", "float", 1.2),
        ParamField("min_probability", "float", 1e-6),
        ParamField("max_probability", "float", 1.0),
    ),
    description="multiplicative backon/backoff driven by collision-detection feedback",
)


@dataclass(frozen=True)
class ProtocolSpec:
    """Declarative description of a protocol: registry kind + parameters."""

    kind: str = "cjz"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        entry = PROTOCOLS.get(self.kind)
        entry.validate(self.params)
        object.__setattr__(self, "params", dict(self.params))

    def __hash__(self) -> int:
        # params is a dict (unhashable), so the generated frozen-dataclass
        # hash would raise; hash the canonical serialized form instead.
        from .study import canonical_json

        return hash(canonical_json(self.to_dict()))

    def build(self) -> ProtocolFactory:
        """The protocol factory for this spec (fresh instance per node)."""
        factory = PROTOCOLS.build(self.kind, self.params)
        factory.spec = self  # type: ignore[attr-defined]
        return factory

    @property
    def protocol_name(self) -> str:
        """Report-facing name of the described protocol (builds one instance)."""
        return self.build()().name

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProtocolSpec":
        if not isinstance(data, Mapping) or "kind" not in data:
            raise SpecError(f"protocol spec must be a mapping with a 'kind': {data!r}")
        return cls(kind=str(data["kind"]), params=dict(data.get("params", {})))
