"""Serializable rate-function (``g`` / ``f``) specs.

The paper's algorithm and several adversaries are parameterized by rate
functions (the jamming budget ``g``, the arrival budget ``f``).  The standard
families from :mod:`repro.functions` stamp their construction recipe onto
:attr:`repro.functions.RateFunction.spec`; this module is the codec between
those recipes and live :class:`~repro.functions.RateFunction` objects.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..errors import SpecError
from ..functions import (
    RateFunction,
    constant_g,
    derive_f,
    exp_sqrt_log_g,
    log_g,
    polylog_g,
)
from .registry import ParamField, SpecRegistry

__all__ = ["RATE_FUNCTIONS", "rate_function_from_spec", "rate_function_to_spec"]

RATE_FUNCTIONS = SpecRegistry("rate function")

RATE_FUNCTIONS.register(
    "constant",
    lambda p: constant_g(float(p.get("value", 4.0))),
    params=(ParamField("value", "float", 4.0),),
    description="g(x) = value: constant-fraction jamming budget (worst case)",
)
RATE_FUNCTIONS.register(
    "log",
    lambda p: log_g(base=float(p.get("base", 2.0)), floor=float(p.get("floor", 2.0))),
    params=(ParamField("base", "float", 2.0), ParamField("floor", "float", 2.0)),
    description="g(x) = max(floor, log_base x)",
)
RATE_FUNCTIONS.register(
    "polylog",
    lambda p: polylog_g(
        power=float(p.get("power", 2.0)), floor=float(p.get("floor", 2.0))
    ),
    params=(ParamField("power", "float", 2.0), ParamField("floor", "float", 2.0)),
    description="g(x) = max(floor, (log2 x)^power)",
)
RATE_FUNCTIONS.register(
    "exp-sqrt-log",
    lambda p: exp_sqrt_log_g(
        scale=float(p.get("scale", 1.0)), floor=float(p.get("floor", 2.0))
    ),
    params=(ParamField("scale", "float", 1.0), ParamField("floor", "float", 2.0)),
    description="g(x) = max(floor, 2^(scale*sqrt(log2 x))): largest admissible family",
)
RATE_FUNCTIONS.register(
    "derived-f",
    lambda p: derive_f(
        rate_function_from_spec(p["g"]),
        a=float(p.get("a", 1.0)),
        c2=float(p.get("c2", 1.0)),
        floor=float(p.get("floor", 1.0)),
    ),
    params=(
        ParamField("g", "rate", required=True),
        ParamField("a", "float", 1.0),
        ParamField("c2", "float", 1.0),
        ParamField("floor", "float", 1.0),
    ),
    description="the paper's f(x) = a*c2*log(x)/log^2(g(x)/a), derived from a g spec",
)


def rate_function_from_spec(spec: Mapping[str, Any]) -> RateFunction:
    """Build a :class:`RateFunction` from a ``{"kind", "params"}`` mapping."""
    if not isinstance(spec, Mapping) or "kind" not in spec:
        raise SpecError(f"rate-function spec must be a mapping with a 'kind': {spec!r}")
    return RATE_FUNCTIONS.build(str(spec["kind"]), spec.get("params"))


def rate_function_to_spec(rate: RateFunction) -> dict:
    """Extract the serializable recipe of a standard-family rate function."""
    if rate.spec is None:
        raise SpecError(
            f"rate function {rate.name!r} was not built by a standard family "
            "constructor and cannot be serialized"
        )
    return {"kind": rate.spec["kind"], "params": dict(rate.spec.get("params", {}))}
