"""Declarative adversary specs: composable arrivals + jamming, or whole adversaries.

Two shapes are supported, mirroring how the library builds adversaries:

* **Composed** (the default, ``kind="composed"``): an arrival-strategy spec
  plus a jamming-strategy spec, assembled into a
  :class:`~repro.adversary.ComposedAdversary`.  This is the serialized form
  of every workload the old ``repro.workloads.WorkloadSpec`` could express.
* **Monolithic**: one of the paper's proof adversaries (``lower-bound``,
  ``non-adaptive-killer``, ``smooth``, ``adaptive-success-chaser``,
  ``schedule``), registered in :data:`ADVERSARIES`.

Adversary specs are *horizon-free*: strategies whose constructors need the
horizon (the proof adversaries, window/period defaults) receive it at
:meth:`AdversarySpec.build` time from the study that runs them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from ..adversary import (
    AdaptiveSuccessChaser,
    Adversary,
    BatchArrivals,
    BudgetedJamming,
    BurstyArrivals,
    ComposedAdversary,
    FrontLoadedJamming,
    LowerBoundAdversary,
    NoArrivals,
    NoJamming,
    NonAdaptiveKillerAdversary,
    PeriodicJamming,
    PoissonArrivals,
    RandomFractionJamming,
    ReactiveJamming,
    ScheduleAdversary,
    ScheduledArrivals,
    SmoothAdversary,
    UniformRandomArrivals,
)
from ..errors import SpecError
from ..functions import derive_f
from .rates import rate_function_from_spec
from .registry import ParamField, SpecRegistry

__all__ = [
    "ADVERSARIES",
    "ARRIVAL_STRATEGIES",
    "COMPOSED_KIND",
    "JAMMING_STRATEGIES",
    "AdversarySpec",
    "StrategySpec",
]

COMPOSED_KIND = "composed"

ARRIVAL_STRATEGIES = SpecRegistry("arrival strategy")
JAMMING_STRATEGIES = SpecRegistry("jamming strategy")
ADVERSARIES = SpecRegistry("adversary")


def _optional_int(value: Any) -> Optional[int]:
    return None if value is None else int(value)


# --------------------------------------------------------------- arrivals

ARRIVAL_STRATEGIES.register(
    "no-arrivals",
    lambda p, horizon=None: NoArrivals(),
    description="no nodes ever arrive",
)
ARRIVAL_STRATEGIES.register(
    "batch",
    lambda p, horizon=None: BatchArrivals(
        count=int(p.get("count", 32)), slot=int(p.get("slot", 1))
    ),
    params=(ParamField("count", "int", 32), ParamField("slot", "int", 1)),
    description="inject `count` nodes simultaneously at `slot` (the paper's batch setting)",
)
ARRIVAL_STRATEGIES.register(
    "poisson",
    lambda p, horizon=None: PoissonArrivals(
        rate=float(p.get("rate", 0.05)), last_slot=_optional_int(p.get("last_slot"))
    ),
    params=(ParamField("rate", "float", 0.05), ParamField("last_slot", "int", None)),
    description="independent Poisson arrivals with mean `rate` per slot",
)
ARRIVAL_STRATEGIES.register(
    "uniform-random",
    lambda p, horizon=None: UniformRandomArrivals(
        total=int(p.get("total", 32)),
        window=(
            int(p.get("start", 1)),
            int(p["end"]) if p.get("end") is not None else int(horizon or 1),
        ),
    ),
    params=(
        ParamField("total", "int", 32),
        ParamField("start", "int", 1),
        ParamField("end", "int", None),
    ),
    description="scatter `total` arrivals uniformly over [start, end] (end defaults to the horizon)",
)
ARRIVAL_STRATEGIES.register(
    "bursty",
    lambda p, horizon=None: BurstyArrivals(
        burst_size=int(p.get("burst_size", 16)),
        period=(
            int(p["period"])
            if p.get("period") is not None
            else max(2, int(horizon or 16) // 8)
        ),
        jitter=bool(p.get("jitter", True)),
        first_burst_slot=int(p.get("first_burst_slot", 1)),
        last_slot=_optional_int(p.get("last_slot")),
    ),
    params=(
        ParamField("burst_size", "int", 16),
        ParamField("period", "int", None),
        ParamField("jitter", "bool", True),
        ParamField("first_burst_slot", "int", 1),
        ParamField("last_slot", "int", None),
    ),
    description="a burst of `burst_size` nodes every `period` slots (Ethernet-like)",
)
ARRIVAL_STRATEGIES.register(
    "scheduled",
    lambda p, horizon=None: ScheduledArrivals(
        schedule=[(int(slot), int(count)) for slot, count in p.get("schedule", [])]
    ),
    params=(ParamField("schedule", "list", ()),),
    description="replay an explicit [[slot, count], ...] arrival schedule",
)

# ---------------------------------------------------------------- jamming

JAMMING_STRATEGIES.register(
    "no-jamming",
    lambda p, horizon=None: NoJamming(),
    description="the benign channel",
)
JAMMING_STRATEGIES.register(
    "random-fraction",
    lambda p, horizon=None: RandomFractionJamming(
        fraction=float(p.get("fraction", 0.25)),
        last_slot=_optional_int(p.get("last_slot")),
    ),
    params=(
        ParamField("fraction", "float", 0.25),
        ParamField("last_slot", "int", None),
    ),
    description="jam each slot independently with probability `fraction` (worst-case regime)",
)
JAMMING_STRATEGIES.register(
    "periodic",
    lambda p, horizon=None: PeriodicJamming(
        period=int(p.get("period", 4)), offset=int(p.get("offset", 0))
    ),
    params=(ParamField("period", "int", 4), ParamField("offset", "int", 0)),
    description="jam every `period`-th slot deterministically",
)
JAMMING_STRATEGIES.register(
    "front-loaded",
    lambda p, horizon=None: FrontLoadedJamming(count=int(p.get("count", 0))),
    params=(ParamField("count", "int", 0),),
    description="jam the first `count` slots (the lower-bound proofs' opening move)",
)
JAMMING_STRATEGIES.register(
    "budgeted",
    lambda p, horizon=None: BudgetedJamming(
        g=rate_function_from_spec(
            p.get("g", {"kind": "constant", "params": {"value": 4.0}})
        ),
        budget_constant=float(p.get("budget_constant", 4.0)),
    ),
    params=(
        ParamField("g", "rate", {"kind": "constant", "params": {"value": 4.0}}),
        ParamField("budget_constant", "float", 4.0),
    ),
    description="random jamming within the paper's budget t/(c*g(t))",
)
JAMMING_STRATEGIES.register(
    "reactive",
    lambda p, horizon=None: ReactiveJamming(
        fraction=float(p.get("fraction", 0.2)), burst=int(p.get("burst", 8))
    ),
    params=(ParamField("fraction", "float", 0.2), ParamField("burst", "int", 8)),
    description="adaptive: jam a burst after every observed success, fraction-capped",
)

# ------------------------------------------------------- whole adversaries


def _require_horizon(horizon: Optional[int], kind: str) -> int:
    if horizon is None:
        raise SpecError(
            f"adversary kind {kind!r} needs the study horizon at build time"
        )
    return int(horizon)


def _g_param(p: Mapping[str, Any]):
    return rate_function_from_spec(
        p.get("g", {"kind": "constant", "params": {"value": 4.0}})
    )


def _f_param(p: Mapping[str, Any]):
    if "f" in p and p["f"] is not None:
        return rate_function_from_spec(p["f"])
    return derive_f(_g_param(p))


ADVERSARIES.register(
    "lower-bound",
    lambda p, horizon=None: LowerBoundAdversary(
        horizon=_require_horizon(horizon, "lower-bound"),
        g=_g_param(p),
        initial_nodes=int(p.get("initial_nodes", 1)),
        jam_constant=float(p.get("jam_constant", 4.0)),
    ),
    params=(
        ParamField("g", "rate", {"kind": "constant", "params": {"value": 4.0}}),
        ParamField("initial_nodes", "int", 1),
        ParamField("jam_constant", "float", 4.0),
    ),
    description="Lemma 4.1 / Theorem 1.3 adversary: jammed prefix + random tail jamming",
)
ADVERSARIES.register(
    "non-adaptive-killer",
    lambda p, horizon=None: NonAdaptiveKillerAdversary(
        horizon=_require_horizon(horizon, "non-adaptive-killer"),
        g=_g_param(p),
        f=_f_param(p),
        jam_constant=float(p.get("jam_constant", 4.0)),
        arrival_constant=float(p.get("arrival_constant", 4.0)),
    ),
    params=(
        ParamField("g", "rate", {"kind": "constant", "params": {"value": 4.0}}),
        ParamField("f", "rate", None),
        ParamField("jam_constant", "float", 4.0),
        ParamField("arrival_constant", "float", 4.0),
    ),
    description="Theorem 4.2 adversary against pre-defined sending sequences",
)
ADVERSARIES.register(
    "smooth",
    lambda p, horizon=None: SmoothAdversary(
        horizon=_require_horizon(horizon, "smooth"),
        f=_f_param(p),
        g=_g_param(p),
        arrival_constant=float(p.get("arrival_constant", 8.0)),
        jam_constant=float(p.get("jam_constant", 8.0)),
    ),
    params=(
        ParamField("g", "rate", {"kind": "constant", "params": {"value": 4.0}}),
        ParamField("f", "rate", None),
        ParamField("arrival_constant", "float", 8.0),
        ParamField("jam_constant", "float", 8.0),
    ),
    description="Corollary 3.6 smooth adversary: evenly spread arrivals and jamming",
)
ADVERSARIES.register(
    "adaptive-success-chaser",
    lambda p, horizon=None: AdaptiveSuccessChaser(
        jam_fraction=float(p.get("jam_fraction", 0.2)),
        arrival_budget_per_success=int(p.get("arrival_budget_per_success", 2)),
        total_arrival_budget=_optional_int(p.get("total_arrival_budget")),
        jam_burst=int(p.get("jam_burst", 4)),
        seed_arrivals=int(p.get("seed_arrivals", 1)),
    ),
    params=(
        ParamField("jam_fraction", "float", 0.2),
        ParamField("arrival_budget_per_success", "int", 2),
        ParamField("total_arrival_budget", "int", None),
        ParamField("jam_burst", "int", 4),
        ParamField("seed_arrivals", "int", 1),
    ),
    description="adaptive adversary injecting nodes and jamming after each success",
)
ADVERSARIES.register(
    "schedule",
    lambda p, horizon=None: ScheduleAdversary(
        arrivals=[(int(s), int(c)) for s, c in p.get("arrivals", [])],
        jammed_slots=[int(s) for s in p.get("jammed_slots", [])],
    ),
    params=(
        ParamField("arrivals", "list", ()),
        ParamField("jammed_slots", "list", ()),
    ),
    description="replay explicit arrival and jamming schedules (fully deterministic)",
)


@dataclass(frozen=True)
class StrategySpec:
    """One composable strategy: registry kind + parameters."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __hash__(self) -> int:
        # params is a dict (unhashable); hash the canonical serialized form.
        from .study import canonical_json

        return hash(canonical_json(self.to_dict()))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StrategySpec":
        if not isinstance(data, Mapping) or "kind" not in data:
            raise SpecError(f"strategy spec must be a mapping with a 'kind': {data!r}")
        return cls(kind=str(data["kind"]), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class AdversarySpec:
    """Declarative adversary: composed strategies or a monolithic proof adversary.

    Exactly one shape is populated: composed specs carry ``arrivals`` and
    ``jamming`` (``kind`` stays ``"composed"``, ``params`` empty); monolithic
    specs carry ``kind``/``params`` and leave the strategy fields ``None``.
    """

    arrivals: Optional[StrategySpec] = None
    jamming: Optional[StrategySpec] = None
    kind: str = COMPOSED_KIND
    params: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind == COMPOSED_KIND:
            arrivals = self.arrivals or StrategySpec("batch")
            jamming = self.jamming or StrategySpec("no-jamming")
            ARRIVAL_STRATEGIES.get(arrivals.kind).validate(arrivals.params)
            JAMMING_STRATEGIES.get(jamming.kind).validate(jamming.params)
            object.__setattr__(self, "arrivals", arrivals)
            object.__setattr__(self, "jamming", jamming)
            if self.params:
                raise SpecError("composed adversary specs take no top-level params")
        else:
            if self.arrivals is not None or self.jamming is not None:
                raise SpecError(
                    f"adversary kind {self.kind!r} does not compose arrival/jamming "
                    "strategies"
                )
            ADVERSARIES.get(self.kind).validate(self.params)
        object.__setattr__(self, "params", dict(self.params))

    def __hash__(self) -> int:
        # params is a dict (unhashable); hash the canonical serialized form.
        from .study import canonical_json

        return hash(canonical_json(self.to_dict()))

    # ------------------------------------------------------------- building

    def build(self, horizon: Optional[int] = None) -> Adversary:
        """Construct a fresh adversary instance.

        ``horizon`` resolves horizon-dependent defaults (uniform window end,
        burst period) and the proof adversaries' mandatory horizon argument.
        """
        if self.kind == COMPOSED_KIND:
            assert self.arrivals is not None and self.jamming is not None
            adversary = ComposedAdversary(
                ARRIVAL_STRATEGIES.build(
                    self.arrivals.kind, self.arrivals.params, horizon=horizon
                ),
                JAMMING_STRATEGIES.build(
                    self.jamming.kind, self.jamming.params, horizon=horizon
                ),
            )
        else:
            adversary = ADVERSARIES.build(self.kind, self.params, horizon=horizon)
        if self.label:
            adversary.name = self.label
        return adversary

    def factory(self, horizon: Optional[int] = None) -> Callable[[], Adversary]:
        """An adversary factory (fresh instance per trial) for the runner."""

        def _factory() -> Adversary:
            return self.build(horizon)

        _factory.spec = self  # type: ignore[attr-defined]
        return _factory

    @property
    def name(self) -> str:
        """Report-facing name (label, or the composed strategies' names)."""
        if self.label:
            return self.label
        if self.kind == COMPOSED_KIND:
            assert self.arrivals is not None and self.jamming is not None
            return f"{self.arrivals.kind}+{self.jamming.kind}"
        return self.kind

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        if self.kind == COMPOSED_KIND:
            assert self.arrivals is not None and self.jamming is not None
            data["arrivals"] = self.arrivals.to_dict()
            data["jamming"] = self.jamming.to_dict()
        else:
            data["params"] = dict(self.params)
        if self.label:
            data["label"] = self.label
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdversarySpec":
        if not isinstance(data, Mapping):
            raise SpecError(f"adversary spec must be a mapping: {data!r}")
        kind = str(data.get("kind", COMPOSED_KIND))
        label = str(data.get("label", ""))
        if kind == COMPOSED_KIND:
            return cls(
                arrivals=(
                    StrategySpec.from_dict(data["arrivals"])
                    if "arrivals" in data
                    else None
                ),
                jamming=(
                    StrategySpec.from_dict(data["jamming"])
                    if "jamming" in data
                    else None
                ),
                label=label,
            )
        return cls(kind=kind, params=dict(data.get("params", {})), label=label)

    # ------------------------------------------------------------- builders

    @classmethod
    def composed(
        cls,
        arrivals: str,
        jamming: str = "no-jamming",
        arrival_params: Optional[Mapping[str, Any]] = None,
        jamming_params: Optional[Mapping[str, Any]] = None,
        label: str = "",
    ) -> "AdversarySpec":
        """Shorthand for the common composed form."""
        return cls(
            arrivals=StrategySpec(arrivals, dict(arrival_params or {})),
            jamming=StrategySpec(jamming, dict(jamming_params or {})),
            label=label,
        )

    @classmethod
    def batch(
        cls, count: int, jam_fraction: float = 0.0, slot: int = 1, label: str = ""
    ) -> "AdversarySpec":
        """Batch arrivals with optional random jamming (the paper's base workload)."""
        return cls.composed(
            "batch",
            "random-fraction" if jam_fraction > 0 else "no-jamming",
            {"count": count, "slot": slot},
            {"fraction": jam_fraction} if jam_fraction > 0 else {},
            label=label,
        )

    @classmethod
    def spread(
        cls,
        total: int,
        end: int,
        jam_fraction: float = 0.0,
        start: int = 1,
        label: str = "",
    ) -> "AdversarySpec":
        """Uniformly spread arrivals with optional random jamming."""
        return cls.composed(
            "uniform-random",
            "random-fraction" if jam_fraction > 0 else "no-jamming",
            {"total": total, "start": start, "end": end},
            {"fraction": jam_fraction} if jam_fraction > 0 else {},
            label=label,
        )

