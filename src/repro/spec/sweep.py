"""Grid sweeps over StudySpecs: declarative expansion + cached execution.

:class:`Sweep` turns a base :class:`~repro.spec.StudySpec` and a mapping of
dotted-path axes (``{"adversary.jamming.params.fraction": [0.0, 0.1, 0.25]}``)
into the cartesian grid of concrete specs; :class:`StudyPlan` executes any
list of specs through the standard backend ladder, consulting a
:class:`~repro.spec.StudyStore` so previously computed points are served
from disk.  Per-point dispatch bookkeeping (expansion, hashing, cache
lookup) is timed separately from simulation so the overhead stays
observable — the design target is dispatch < 10% of study runtime.

Long sweeps are *resumable*: :meth:`StudyPlan.run` can journal every
point's outcome (done/failed) to an append-only JSONL file, tolerate
per-point failures (``on_error="skip"`` records the failure and moves on;
``"retry"`` re-attempts the point before giving up), and on a later
invocation with ``resume=True`` skip the points the journal marks done
(served from the store) while re-attempting the failed ones.  The journal
is keyed by spec hash, so editing unrelated points of a sweep never
invalidates completed work.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .. import faults
from ..errors import SpecError
from .study import StudySpec

__all__ = ["PlanJournal", "PlanResult", "StudyPlan", "Sweep", "sweep_rows"]


@dataclass(frozen=True)
class Sweep:
    """A parameter grid over one base spec.

    ``axes`` maps dotted override paths (see
    :meth:`~repro.spec.StudySpec.with_overrides`) to the values each axis
    takes; expansion is the cartesian product in axis order, first axis
    slowest (row-major).
    """

    base: StudySpec
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        axes: Dict[str, Tuple[Any, ...]] = {}
        for path, values in dict(self.axes).items():
            values = tuple(values)
            if not values:
                raise SpecError(f"sweep axis {path!r} has no values")
            axes[str(path)] = values
        object.__setattr__(self, "axes", axes)

    @property
    def size(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def points(self) -> List[Dict[str, Any]]:
        """The grid as a list of {path: value} override mappings."""
        if not self.axes:
            return [{}]
        paths = list(self.axes)
        return [
            dict(zip(paths, combo))
            for combo in itertools.product(*(self.axes[p] for p in paths))
        ]

    def expand(self) -> List[StudySpec]:
        """Concrete specs for every grid point, with point labels attached."""
        specs = []
        for overrides in self.points():
            spec = self.base.with_overrides(overrides)
            specs.append(
                spec.with_overrides({"label": _point_label(self.base, overrides)})
            )
        return specs

    def plan(self) -> "StudyPlan":
        return StudyPlan(self.expand())


def _point_label(base: StudySpec, overrides: Mapping[str, Any]) -> str:
    if not overrides:
        return base.display_label
    parts = [f"{path.rsplit('.', 1)[-1]}={value}" for path, value in overrides.items()]
    prefix = f"{base.label} " if base.label else ""
    return prefix + " ".join(parts)


@dataclass
class PlanResult:
    """One executed grid point: spec, study, provenance and timing.

    ``study`` is ``None`` — and ``failed`` / ``error`` are set — for points
    that exhausted their attempts under ``on_error="skip"`` / ``"retry"``.
    ``attempts`` counts executions of this point in this run (0 when the
    point was served from the cache or the resume journal).
    """

    spec: StudySpec
    study: Any
    overrides: Dict[str, Any] = field(default_factory=dict)
    cached: bool = False
    dispatch_seconds: float = 0.0
    run_seconds: float = 0.0
    failed: bool = False
    error: str = ""
    attempts: int = 0


class PlanJournal:
    """Append-only JSONL record of per-point sweep outcomes.

    One record per completed or failed point, keyed by spec hash; the last
    record for a hash wins, so re-running a sweep with the same journal
    simply appends the new outcomes.  The file is human-greppable and
    crash-tolerant: a torn final line (the writing process died mid-append)
    is ignored on load.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)

    @property
    def path(self) -> Path:
        return self._path

    def append(self, record: Mapping[str, Any]) -> None:
        self._path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(dict(record), sort_keys=True) + "\n"
        with self._path.open("a+b") as handle:
            # A crashed writer can leave a torn final line with no newline;
            # appending straight after it would weld this record onto the
            # tear and lose both.  Start on a fresh line instead.
            if handle.seek(0, os.SEEK_END) > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(line.encode("utf-8"))

    def records(self) -> List[Dict[str, Any]]:
        """Every parseable record in append order.

        The torn-line-tolerant read shared by every JSONL journal in the
        library (this one and the serve WAL): a missing file is an empty
        journal, blank lines are skipped, and an unparseable line — a torn
        trailing append from a crashed writer — is dropped rather than
        poisoning the load.
        """
        records: List[Dict[str, Any]] = []
        try:
            lines = self._path.read_text().splitlines()
        except OSError:
            return records
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing line from a crashed writer
            if isinstance(record, dict):
                records.append(record)
        return records

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Latest record per spec hash (empty when the file doesn't exist)."""
        state: Dict[str, Dict[str, Any]] = {}
        for record in self.records():
            digest = record.get("hash")
            if digest:
                state[str(digest)] = record
        return state


class StudyPlan:
    """An ordered list of StudySpecs executed (and cached) as one unit."""

    def __init__(
        self,
        specs: Sequence[StudySpec],
        overrides: Optional[Sequence[Mapping[str, Any]]] = None,
    ) -> None:
        if not specs:
            raise SpecError("a study plan needs at least one spec")
        if overrides is not None and len(overrides) != len(specs):
            raise SpecError("overrides must align one-to-one with specs")
        self._specs = list(specs)
        self._overrides = [dict(o) for o in overrides] if overrides else [
            {} for _ in specs
        ]

    @classmethod
    def from_sweep(cls, sweep: Sweep) -> "StudyPlan":
        return cls(sweep.expand(), overrides=sweep.points())

    @property
    def specs(self) -> List[StudySpec]:
        return list(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def run(
        self,
        store: Optional[Any] = None,
        progress: Optional[Callable[[PlanResult], None]] = None,
        on_error: str = "raise",
        retries: int = 1,
        journal: Optional[Union[str, Path, PlanJournal]] = None,
        resume: bool = False,
        fuse: bool = True,
    ) -> List[PlanResult]:
        """Execute every point in order, consulting ``store`` first.

        ``store`` is anything with the :class:`~repro.spec.store.StudyStore`
        get/put surface — a plain store or a
        :class:`~repro.serve.ShardedStudyStore`; placement is invisible to
        the plan.

        ``dispatch_seconds`` covers everything the plan adds on top of the
        study itself (hashing, cache lookup, result registration);
        ``run_seconds`` is the study execution (zero for cache hits).

        ``on_error`` governs per-point failures: ``"raise"`` (default)
        propagates immediately, ``"skip"`` records a failed
        :class:`PlanResult` and continues, ``"retry"`` re-attempts the
        point up to ``retries`` extra times before treating it like
        ``"skip"``.  With a ``journal``, every point's outcome is appended
        as it happens; ``resume=True`` then skips points the journal marks
        done (serving them from ``store`` when possible) and re-attempts
        only the failed/unseen ones.

        ``fuse=True`` (default) batches compatible pending points into
        single fused lockstep runs (see :mod:`repro.sim.backends.fused`)
        before the per-point loop; results are seed-for-seed identical to
        per-point dispatch, and a fused group that fails simply falls back
        to per-point execution.  ``fuse=False`` restores strict per-point
        dispatch (``repro sweep --no-fuse``).
        """
        if on_error not in ("raise", "skip", "retry"):
            raise SpecError(
                f"on_error must be 'raise', 'skip' or 'retry', got {on_error!r}"
            )
        if retries < 0:
            raise SpecError(f"retries must be >= 0, got {retries!r}")
        if journal is not None and not isinstance(journal, PlanJournal):
            journal = PlanJournal(journal)
        if resume and journal is None:
            raise SpecError("resume=True requires a journal")
        completed = (
            {
                digest
                for digest, record in journal.load().items()
                if record.get("status") == "done"
            }
            if resume
            else set()
        )
        attempts_allowed = 1 + (retries if on_error == "retry" else 0)
        prefused: Dict[int, Any] = {}
        fused_seconds: Dict[int, float] = {}
        if fuse:
            prefused, fused_seconds = self._prefuse(store)
        results: List[PlanResult] = []
        for index, (spec, overrides) in enumerate(
            zip(self._specs, self._overrides)
        ):
            dispatch_start = time.perf_counter()
            digest = spec.spec_hash()
            study = store.get(spec) if store is not None else None
            cached = study is not None
            if study is None and digest in completed:
                # The journal says this point finished but the store no
                # longer has it (different store, pruned entry, quarantined
                # corruption): fall through and re-run it.
                completed.discard(digest)
            dispatch_elapsed = time.perf_counter() - dispatch_start
            run_elapsed = 0.0
            attempts = 0
            error = ""
            if study is None:
                run_start = time.perf_counter()
                plan = faults.active_plan()
                for attempt in range(attempts_allowed):
                    attempts = attempt + 1
                    try:
                        plan.maybe_raise(
                            "sweep-point", point=index, attempt=attempt
                        )
                        fused = prefused.pop(index, None)
                        study = fused if fused is not None else spec.run()
                        break
                    except Exception as exc:
                        error = f"{type(exc).__name__}: {exc}"
                        if on_error == "raise":
                            if journal is not None:
                                journal.append(
                                    _journal_record(
                                        spec, digest, "failed", error, attempts
                                    )
                                )
                            raise
                run_elapsed = (
                    time.perf_counter() - run_start
                    + fused_seconds.pop(index, 0.0)
                )
                if study is not None and store is not None:
                    publish_start = time.perf_counter()
                    store.put(spec, study)
                    dispatch_elapsed += time.perf_counter() - publish_start
            result = PlanResult(
                spec=spec,
                study=study,
                overrides=dict(overrides),
                cached=cached,
                dispatch_seconds=dispatch_elapsed,
                run_seconds=run_elapsed,
                failed=study is None,
                error=error if study is None else "",
                attempts=attempts,
            )
            if journal is not None:
                journal.append(
                    _journal_record(
                        spec,
                        digest,
                        "failed" if result.failed else "done",
                        result.error,
                        attempts,
                    )
                )
            results.append(result)
            if progress is not None:
                progress(result)
        return results

    def _prefuse(
        self, store: Optional[Any]
    ) -> Tuple[Dict[int, Any], Dict[int, float]]:
        """Run compatible pending points as fused groups, keyed by index.

        Only points the store cannot serve are considered.  A group that
        raises (including injected ``fused-group`` faults) or turns out not
        to be fusable contributes nothing — its members run per-point in
        the main loop, so a fused failure can never corrupt or lose a
        sibling point.  Returns per-index studies plus each point's share
        of its group's wall time (pro-rated by trials).
        """
        from ..sim.backends.fused import plan_fusion_groups, run_fused_group

        pending = []
        for index, spec in enumerate(self._specs):
            if store is not None and store.get(spec) is not None:
                continue
            pending.append((index, spec))
        studies: Dict[int, Any] = {}
        seconds: Dict[int, float] = {}
        for group in plan_fusion_groups(pending):
            start = time.perf_counter()
            try:
                fused = run_fused_group([spec for _, spec in group])
            except Exception:
                continue  # every member falls back to per-point dispatch
            if fused is None:
                continue
            elapsed = time.perf_counter() - start
            total = sum(spec.trials for _, spec in group)
            for (index, spec), study in zip(group, fused):
                studies[index] = study
                seconds[index] = elapsed * spec.trials / max(1, total)
        return studies, seconds


def _journal_record(
    spec: StudySpec, digest: str, status: str, error: str, attempts: int
) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "hash": digest,
        "label": spec.display_label,
        "status": status,
        "attempts": attempts,
    }
    if error:
        record["error"] = error
    return record


def sweep_rows(results: Sequence[PlanResult]) -> List[Dict[str, Any]]:
    """Flat per-point rows (overrides + aggregates) for tables/CSV/JSON.

    Failed points (``on_error="skip"``/``"retry"``) contribute a row with
    ``status="failed"`` and their error text instead of aggregates.  Rows
    are normalized to the union of all keys (first-seen order, missing
    values blank), so a sweep mixing failed and successful points still
    renders as one rectangular table/CSV.
    """
    rows = []
    for result in results:
        row: Dict[str, Any] = {
            "label": result.spec.display_label,
            "hash": result.spec.spec_hash()[:12],
            "cached": result.cached,
            "status": "failed" if result.failed else "ok",
        }
        for path, value in result.overrides.items():
            row[path] = value
        if result.failed:
            row["error"] = result.error
        else:
            row.update(result.study.summary_row())
        row["dispatch_seconds"] = result.dispatch_seconds
        row["run_seconds"] = result.run_seconds
        rows.append(row)
    keys: List[str] = []
    for row in rows:
        for key in row:
            if key not in keys:
                keys.append(key)
    return [{key: row.get(key, "") for key in keys} for row in rows]
