"""Grid sweeps over StudySpecs: declarative expansion + cached execution.

:class:`Sweep` turns a base :class:`~repro.spec.StudySpec` and a mapping of
dotted-path axes (``{"adversary.jamming.params.fraction": [0.0, 0.1, 0.25]}``)
into the cartesian grid of concrete specs; :class:`StudyPlan` executes any
list of specs through the standard backend ladder, consulting a
:class:`~repro.spec.StudyStore` so previously computed points are served
from disk.  Per-point dispatch bookkeeping (expansion, hashing, cache
lookup) is timed separately from simulation so the overhead stays
observable — the design target is dispatch < 10% of study runtime.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import SpecError
from .store import StudyStore
from .study import StudySpec

__all__ = ["PlanResult", "StudyPlan", "Sweep", "sweep_rows"]


@dataclass(frozen=True)
class Sweep:
    """A parameter grid over one base spec.

    ``axes`` maps dotted override paths (see
    :meth:`~repro.spec.StudySpec.with_overrides`) to the values each axis
    takes; expansion is the cartesian product in axis order, first axis
    slowest (row-major).
    """

    base: StudySpec
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        axes: Dict[str, Tuple[Any, ...]] = {}
        for path, values in dict(self.axes).items():
            values = tuple(values)
            if not values:
                raise SpecError(f"sweep axis {path!r} has no values")
            axes[str(path)] = values
        object.__setattr__(self, "axes", axes)

    @property
    def size(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def points(self) -> List[Dict[str, Any]]:
        """The grid as a list of {path: value} override mappings."""
        if not self.axes:
            return [{}]
        paths = list(self.axes)
        return [
            dict(zip(paths, combo))
            for combo in itertools.product(*(self.axes[p] for p in paths))
        ]

    def expand(self) -> List[StudySpec]:
        """Concrete specs for every grid point, with point labels attached."""
        specs = []
        for overrides in self.points():
            spec = self.base.with_overrides(overrides)
            specs.append(
                spec.with_overrides({"label": _point_label(self.base, overrides)})
            )
        return specs

    def plan(self) -> "StudyPlan":
        return StudyPlan(self.expand())


def _point_label(base: StudySpec, overrides: Mapping[str, Any]) -> str:
    if not overrides:
        return base.display_label
    parts = [f"{path.rsplit('.', 1)[-1]}={value}" for path, value in overrides.items()]
    prefix = f"{base.label} " if base.label else ""
    return prefix + " ".join(parts)


@dataclass
class PlanResult:
    """One executed grid point: spec, study, provenance and timing."""

    spec: StudySpec
    study: Any
    overrides: Dict[str, Any] = field(default_factory=dict)
    cached: bool = False
    dispatch_seconds: float = 0.0
    run_seconds: float = 0.0


class StudyPlan:
    """An ordered list of StudySpecs executed (and cached) as one unit."""

    def __init__(
        self,
        specs: Sequence[StudySpec],
        overrides: Optional[Sequence[Mapping[str, Any]]] = None,
    ) -> None:
        if not specs:
            raise SpecError("a study plan needs at least one spec")
        if overrides is not None and len(overrides) != len(specs):
            raise SpecError("overrides must align one-to-one with specs")
        self._specs = list(specs)
        self._overrides = [dict(o) for o in overrides] if overrides else [
            {} for _ in specs
        ]

    @classmethod
    def from_sweep(cls, sweep: Sweep) -> "StudyPlan":
        return cls(sweep.expand(), overrides=sweep.points())

    @property
    def specs(self) -> List[StudySpec]:
        return list(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def run(
        self,
        store: Optional[StudyStore] = None,
        progress: Optional[Callable[[PlanResult], None]] = None,
    ) -> List[PlanResult]:
        """Execute every point in order, consulting ``store`` first.

        ``dispatch_seconds`` covers everything the plan adds on top of the
        study itself (hashing, cache lookup, result registration);
        ``run_seconds`` is the study execution (zero for cache hits).
        """
        results: List[PlanResult] = []
        for spec, overrides in zip(self._specs, self._overrides):
            dispatch_start = time.perf_counter()
            study = store.get(spec) if store is not None else None
            cached = study is not None
            dispatch_elapsed = time.perf_counter() - dispatch_start
            run_elapsed = 0.0
            if study is None:
                run_start = time.perf_counter()
                study = spec.run()
                run_elapsed = time.perf_counter() - run_start
                if store is not None:
                    publish_start = time.perf_counter()
                    store.put(spec, study)
                    dispatch_elapsed += time.perf_counter() - publish_start
            result = PlanResult(
                spec=spec,
                study=study,
                overrides=dict(overrides),
                cached=cached,
                dispatch_seconds=dispatch_elapsed,
                run_seconds=run_elapsed,
            )
            results.append(result)
            if progress is not None:
                progress(result)
        return results


def sweep_rows(results: Sequence[PlanResult]) -> List[Dict[str, Any]]:
    """Flat per-point rows (overrides + aggregates) for tables/CSV/JSON."""
    rows = []
    for result in results:
        row: Dict[str, Any] = {
            "label": result.spec.display_label,
            "hash": result.spec.spec_hash()[:12],
            "cached": result.cached,
        }
        for path, value in result.overrides.items():
            row[path] = value
        row.update(result.study.summary_row())
        row["dispatch_seconds"] = result.dispatch_seconds
        row["run_seconds"] = result.run_seconds
        rows.append(row)
    return rows
