"""Generic key → builder registries backing the declarative spec layer.

Every spec-able family (protocols, arrival strategies, jamming strategies,
whole adversaries, rate functions) is described by one :class:`SpecRegistry`:
a mapping from a stable string *kind* to a :class:`RegistryEntry` holding the
builder, the declared parameter schema and a one-line description.  The
registries are what make specs *data*: validation, listing (``repro
scenarios`` / docs) and construction all go through them, and nothing in the
execution path needs to import concrete classes to interpret a spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..errors import SpecError

__all__ = ["ParamField", "RegistryEntry", "SpecRegistry"]


@dataclass(frozen=True)
class ParamField:
    """Schema of one spec parameter: name, JSON type tag and default.

    ``kind`` is a documentation-level tag (``"int"``, ``"float"``, ``"bool"``,
    ``"str"``, ``"rate"`` for a nested rate-function spec, ``"list"`` for
    schedule-style payloads); builders remain the source of truth for strict
    validation.  ``required`` fields have no usable default.
    """

    name: str
    kind: str = "float"
    default: Any = None
    required: bool = False

    def describe(self) -> str:
        tag = f"{self.name}: {self.kind}"
        if self.required:
            return f"{tag} (required)"
        return f"{tag} = {self.default!r}"


@dataclass(frozen=True)
class RegistryEntry:
    """One registered kind: how to build it and what parameters it takes."""

    kind: str
    builder: Callable[..., Any]
    params: Tuple[ParamField, ...] = ()
    description: str = ""

    def param_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.params)

    def validate(self, params: Mapping[str, Any]) -> None:
        known = set(self.param_names())
        unknown = sorted(set(params) - known)
        if unknown:
            raise SpecError(
                f"unknown parameter(s) {', '.join(unknown)} for kind "
                f"{self.kind!r}; known: {', '.join(sorted(known)) or '(none)'}"
            )
        missing = sorted(
            f.name for f in self.params if f.required and f.name not in params
        )
        if missing:
            raise SpecError(
                f"kind {self.kind!r} requires parameter(s): {', '.join(missing)}"
            )


class SpecRegistry:
    """Name-indexed collection of :class:`RegistryEntry` values."""

    def __init__(self, label: str) -> None:
        self._label = label
        self._entries: Dict[str, RegistryEntry] = {}

    @property
    def label(self) -> str:
        return self._label

    def register(
        self,
        kind: str,
        builder: Callable[..., Any],
        params: Tuple[ParamField, ...] = (),
        description: str = "",
    ) -> RegistryEntry:
        if kind in self._entries:
            raise SpecError(f"duplicate {self._label} kind {kind!r}")
        entry = RegistryEntry(
            kind=kind, builder=builder, params=params, description=description
        )
        self._entries[kind] = entry
        return entry

    def get(self, kind: str) -> RegistryEntry:
        try:
            return self._entries[kind]
        except KeyError as exc:
            raise SpecError(
                f"unknown {self._label} kind {kind!r}; known: "
                f"{', '.join(sorted(self._entries))}"
            ) from exc

    def build(self, kind: str, params: Optional[Mapping[str, Any]] = None, **extra):
        """Validate ``params`` against the schema and invoke the builder.

        ``extra`` carries context the spec itself does not store (currently
        only ``horizon`` for adversaries whose constructors need it).
        """
        entry = self.get(kind)
        params = dict(params or {})
        entry.validate(params)
        return entry.builder(params, **extra)

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def __contains__(self, kind: str) -> bool:
        return kind in self._entries

    def __iter__(self):
        return iter(self.kinds())
