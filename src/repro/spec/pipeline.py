"""Serializable metric-pipeline specs.

A :class:`PipelineSpec` is the JSON form of a
:class:`~repro.metrics.MetricPipeline`: an ordered list of ``{"kind",
"params"}`` reducer entries, validated against the :data:`METRIC_REDUCERS`
registry exactly like protocols and adversaries.  ``spec.build()`` produces
a live pipeline; ``MetricPipeline.to_spec()`` goes the other way for every
registered reducer kind.

Example::

    {"reducers": [
        {"kind": "success-timeline", "params": {}},
        {"kind": "windowed-rate", "params": {"window": 64}},
        {"kind": "scalar", "params": {"metric": "successes"}}
    ]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from ..errors import SpecError
from ..functions import RateFunction
from ..metrics.pipeline import (
    EnergyReducer,
    FGThroughputReducer,
    LatencyReducer,
    MetricPipeline,
    MetricReducer,
    ScalarSummaryReducer,
    SuccessTimelineReducer,
    WindowedRateReducer,
)
from .rates import rate_function_from_spec, rate_function_to_spec
from .registry import ParamField, SpecRegistry

__all__ = ["METRIC_REDUCERS", "PipelineSpec"]

METRIC_REDUCERS = SpecRegistry("metric reducer")

METRIC_REDUCERS.register(
    "success-timeline",
    lambda p: SuccessTimelineReducer(),
    description="per-trial success-slot timelines from the successes column",
)
METRIC_REDUCERS.register(
    "windowed-rate",
    lambda p: WindowedRateReducer(int(p["window"])),
    params=(ParamField("window", "int", required=True),),
    description="success counts over consecutive fixed-length windows",
)
METRIC_REDUCERS.register(
    "fg-throughput",
    lambda p: FGThroughputReducer(
        f=rate_function_from_spec(p["f"]),
        g=rate_function_from_spec(p["g"]),
        slack=float(p.get("slack", 1.0)),
        min_prefix=int(p.get("min_prefix", 16)),
        additive_grace=float(p.get("additive_grace", 0.0)),
    ),
    params=(
        ParamField("f", "rate", required=True),
        ParamField("g", "rate", required=True),
        ParamField("slack", "float", 1.0),
        ParamField("min_prefix", "int", 16),
        ParamField("additive_grace", "float", 0.0),
    ),
    description="Definition 1.1 verdicts per trial via the columnar checker",
)
METRIC_REDUCERS.register(
    "latency",
    lambda p: LatencyReducer(),
    description="slots-to-success distribution over all nodes of all trials",
)
METRIC_REDUCERS.register(
    "energy",
    lambda p: EnergyReducer(),
    description="per-node broadcast-count (energy) distribution",
)
METRIC_REDUCERS.register(
    "scalar",
    lambda p: ScalarSummaryReducer(str(p["metric"])),
    params=(ParamField("metric", "str", required=True),),
    description="mean/std/min/max of one named per-trial scalar",
)


def _canonical(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _serialize_params(reducer: MetricReducer) -> Dict[str, Any]:
    """Reducer constructor params with rate functions folded to their specs."""
    params: Dict[str, Any] = {}
    for key, value in reducer.spec_params().items():
        if isinstance(value, RateFunction):
            value = rate_function_to_spec(value)
        params[key] = value
    return params


@dataclass(frozen=True)
class PipelineSpec:
    """Ordered, JSON-round-trippable description of a metric pipeline."""

    reducers: Tuple[Dict[str, Any], ...] = ()

    def __post_init__(self) -> None:
        normalized: List[Dict[str, Any]] = []
        for entry in self.reducers:
            if not isinstance(entry, Mapping) or "kind" not in entry:
                raise SpecError(
                    f"reducer entry must be a mapping with a 'kind': {entry!r}"
                )
            unknown = sorted(set(entry) - {"kind", "params"})
            if unknown:
                raise SpecError(
                    f"unknown reducer entry field(s): {', '.join(unknown)}"
                )
            kind = str(entry["kind"])
            params = dict(entry.get("params") or {})
            METRIC_REDUCERS.get(kind).validate(params)
            normalized.append({"kind": kind, "params": params})
        if not normalized:
            raise SpecError("a pipeline spec needs at least one reducer")
        object.__setattr__(self, "reducers", tuple(normalized))

    def __hash__(self) -> int:
        # Entries hold dicts, so the generated frozen-dataclass hash would
        # raise; hash the canonical serialized form (consistent with __eq__).
        return hash(_canonical(self.to_dict()))

    # ------------------------------------------------------------- building

    def build(self) -> MetricPipeline:
        """A fresh :class:`~repro.metrics.MetricPipeline` for this spec."""
        return MetricPipeline(
            [
                METRIC_REDUCERS.build(entry["kind"], entry["params"])
                for entry in self.reducers
            ]
        )

    @classmethod
    def from_pipeline(cls, pipeline: MetricPipeline) -> "PipelineSpec":
        """Serialize a live pipeline (every registered reducer kind round-trips)."""
        entries = []
        for reducer in pipeline.reducers:
            if reducer.kind not in METRIC_REDUCERS:
                raise SpecError(
                    f"reducer kind {reducer.kind!r} is not registered and "
                    "cannot be serialized"
                )
            entries.append(
                {"kind": reducer.kind, "params": _serialize_params(reducer)}
            )
        return cls(reducers=tuple(entries))

    @classmethod
    def of(cls, *reducers: MetricReducer) -> "PipelineSpec":
        """Convenience: spec of a pipeline assembled from live reducers."""
        return cls.from_pipeline(MetricPipeline(list(reducers)))

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        return {
            "reducers": [
                {"kind": entry["kind"], "params": dict(entry["params"])}
                for entry in self.reducers
            ]
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineSpec":
        if not isinstance(data, Mapping):
            raise SpecError(f"pipeline spec must be a mapping: {data!r}")
        unknown = sorted(set(data) - {"reducers"})
        if unknown:
            raise SpecError(f"unknown pipeline spec field(s): {', '.join(unknown)}")
        reducers = data.get("reducers")
        if not isinstance(reducers, Sequence) or isinstance(reducers, str):
            raise SpecError("pipeline spec 'reducers' must be a list")
        return cls(reducers=tuple(reducers))

    def to_json(self, indent=None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid pipeline spec JSON: {exc}") from exc
        return cls.from_dict(data)
