"""Declarative, serializable experiment specs and the grid-sweep engine.

The paper's claims are statements over *families* of configurations —
throughput versus jamming fraction, trade-off curves over ``g``, robustness
across arrival patterns.  This package makes a configuration a piece of
*data* instead of a pair of live Python closures:

* :class:`ProtocolSpec` — ``(kind, params)`` naming a registered protocol
  (the paper's algorithm and every baseline in :mod:`repro.protocols`);
* :class:`AdversarySpec` — composable arrivals + jamming strategies, or one
  of the paper's monolithic proof adversaries;
* :class:`StudySpec` — protocol + adversary + horizon/trials/seed/backend/
  workers: everything needed to reproduce a multi-trial study;
* :class:`Sweep` / :class:`StudyPlan` — cartesian grids of StudySpecs and
  their executor;
* :class:`StudyStore` — a content-addressed on-disk cache keyed by
  :meth:`StudySpec.spec_hash`.

Because specs are plain JSON they can be named, diffed, cached, shipped to
workers and swept over grids.  ``StudySpec.from_json(spec.to_json())`` runs
seed-for-seed identical to the equivalent callable-factory invocation of
:func:`repro.sim.run_trials` (which still accepts raw callables as the
escape hatch for unserializable configurations).

Example — the full description of a jammed-batch study::

    {
      "protocol": {"kind": "cjz",
                   "params": {"g": {"kind": "constant", "params": {"value": 4.0}}}},
      "adversary": {"kind": "composed",
                    "arrivals": {"kind": "batch", "params": {"count": 64}},
                    "jamming": {"kind": "random-fraction",
                                "params": {"fraction": 0.25}}},
      "horizon": 8192, "trials": 5, "seed": 2021,
      "backend": "auto", "workers": 1,
      "stop_when_drained": false, "keep_trace": false, "label": "jammed-batch"
    }

Run it with ``StudySpec.from_json(text).run()``, or from the shell::

    python -m repro.cli sweep --spec study.json \\
        --axis adversary.jamming.params.fraction=0.0,0.1,0.25,0.4

Named scenarios (``repro.workloads``) are thin wrappers that produce these
specs; ``repro scenarios`` lists them and ``repro simulate --scenario
ethernet-burst`` runs one.
"""

from .adversary import (
    ADVERSARIES,
    ARRIVAL_STRATEGIES,
    COMPOSED_KIND,
    JAMMING_STRATEGIES,
    AdversarySpec,
    StrategySpec,
)
from .pipeline import METRIC_REDUCERS, PipelineSpec
from .protocol import PROTOCOLS, ProtocolSpec
from .rates import RATE_FUNCTIONS, rate_function_from_spec, rate_function_to_spec
from .registry import ParamField, RegistryEntry, SpecRegistry
from .store import CachedResult, StudyStore
from .study import StudySpec, canonical_json
from .sweep import PlanJournal, PlanResult, StudyPlan, Sweep, sweep_rows

__all__ = [
    "ADVERSARIES",
    "ARRIVAL_STRATEGIES",
    "COMPOSED_KIND",
    "JAMMING_STRATEGIES",
    "METRIC_REDUCERS",
    "PROTOCOLS",
    "RATE_FUNCTIONS",
    "AdversarySpec",
    "CachedResult",
    "ParamField",
    "PipelineSpec",
    "PlanJournal",
    "PlanResult",
    "ProtocolSpec",
    "RegistryEntry",
    "SpecRegistry",
    "StrategySpec",
    "StudyPlan",
    "StudySpec",
    "StudyStore",
    "Sweep",
    "canonical_json",
    "rate_function_from_spec",
    "rate_function_to_spec",
    "sweep_rows",
]
