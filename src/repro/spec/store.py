"""Content-addressed on-disk cache of study results.

Studies are keyed by :meth:`repro.spec.StudySpec.spec_hash` — the hash of
the spec's semantic fields — so re-running the same spec (from a sweep, a
CLI invocation, another process) loads the stored result instead of
simulating again.  The store keeps the per-trial *summary* surface of a
study (counters, latencies, energy counts), which is everything the
aggregation API of :class:`~repro.sim.TrialStudy` consumes; per-slot prefix
arrays and traces are deliberately not cached (they are horizon-sized and
only needed by bound-checking experiments, which run uncached).

Layout: ``<root>/<hash[:2]>/<hash>.json``, written atomically.  Every
entry carries a **content checksum** (sha256 of its canonical payload)
that is verified on read: an entry that exists but cannot be parsed — or
parses but fails its checksum — is *corrupt*, not merely missing.  It is
moved to ``<root>/corrupt/`` (with a warning and a ``quarantine`` event on
any active :class:`~repro.sim.health.RunHealth`) so the evidence survives
for diagnosis while the caller transparently re-runs the study.  A missing
file stays a plain silent miss; entries written before checksums existed
verify as *legacy* (readable, unverifiable).  :meth:`StudyStore.scrub`
walks every entry and applies the same classification proactively —
``repro store scrub`` from the shell.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

from .. import faults
from ..errors import SpecError
from .study import StudySpec

__all__ = [
    "CachedResult",
    "StudyStore",
    "payload_checksum",
    "record_result",
    "result_record",
]

_SCHEMA_VERSION = 1


def payload_checksum(payload: Mapping[str, Any]) -> str:
    """sha256 of an entry's canonical JSON, ``checksum`` field excluded.

    The checksum is computed over the same sorted, compact serialization
    for writer and verifier, so any on-disk bit damage inside an entry that
    still parses as JSON (the failure mode a parse check cannot see) is
    caught on read.
    """
    body = {key: value for key, value in payload.items() if key != "checksum"}
    text = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CachedResult:
    """Summary-level stand-in for a :class:`~repro.sim.SimulationResult`.

    Implements the scalar surface the study aggregation API uses
    (``total_*`` counters, latency/energy summaries, provenance).  Accessing
    per-slot data (prefix arrays, traces) is impossible by construction —
    cached studies are for metric aggregation, not bound replay.
    """

    total_successes: int
    total_arrivals: int
    total_active_slots: int
    total_jammed_slots: int
    unfinished_nodes: int
    horizon: int
    protocol_name: str = "protocol"
    adversary_name: str = "adversary"
    backend: str = "cached"
    wall_time_seconds: float = 0.0
    latency_values: List[int] = field(default_factory=list)
    broadcast_count_values: List[int] = field(default_factory=list)

    def latencies(self) -> List[int]:
        return list(self.latency_values)

    def broadcast_counts(self) -> List[int]:
        return list(self.broadcast_count_values)

    def mean_latency(self) -> float:
        if not self.latency_values:
            return float("nan")
        return float(np.mean(self.latency_values))

    def max_latency(self) -> Optional[int]:
        return max(self.latency_values) if self.latency_values else None

    @property
    def slots_per_second(self) -> float:
        if self.wall_time_seconds <= 0.0:
            return 0.0
        return self.horizon / self.wall_time_seconds

    def classical_throughput(self, t: Optional[int] = None) -> float:
        """Classical throughput at the horizon only (no prefixes are cached)."""
        if t is not None and t != self.horizon:
            raise SpecError(
                "cached results carry no per-slot prefixes; "
                "classical_throughput is only defined at the horizon "
                f"(t={t}, horizon={self.horizon})"
            )
        if self.total_active_slots == 0:
            return float("inf")
        return self.total_arrivals / self.total_active_slots

    def describe(self) -> str:
        return (
            f"{self.protocol_name} vs {self.adversary_name} [cached]: "
            f"{self.total_successes}/{self.total_arrivals} messages delivered "
            f"in {self.horizon} slots"
        )


def result_record(result) -> Dict[str, Any]:
    """JSON record of one result's summary surface (store/wire format)."""
    return {
        "successes": int(result.total_successes),
        "arrivals": int(result.total_arrivals),
        "active_slots": int(result.total_active_slots),
        "jammed_slots": int(result.total_jammed_slots),
        "unfinished": int(result.unfinished_nodes),
        "horizon": int(result.horizon),
        "protocol": result.protocol_name,
        "adversary": result.adversary_name,
        "backend": result.backend,
        "wall_time_seconds": float(result.wall_time_seconds),
        "latencies": [int(v) for v in result.latencies()],
        "broadcast_counts": [int(v) for v in result.broadcast_counts()],
    }


def record_result(record: Mapping[str, Any]) -> CachedResult:
    """Rehydrate a :class:`CachedResult` from its JSON record."""
    return CachedResult(
        total_successes=int(record["successes"]),
        total_arrivals=int(record["arrivals"]),
        total_active_slots=int(record["active_slots"]),
        total_jammed_slots=int(record["jammed_slots"]),
        unfinished_nodes=int(record["unfinished"]),
        horizon=int(record["horizon"]),
        protocol_name=str(record.get("protocol", "protocol")),
        adversary_name=str(record.get("adversary", "adversary")),
        backend=str(record.get("backend", "cached")),
        wall_time_seconds=float(record.get("wall_time_seconds", 0.0)),
        latency_values=[int(v) for v in record.get("latencies", [])],
        broadcast_count_values=[int(v) for v in record.get("broadcast_counts", [])],
    )


class StudyStore:
    """Directory-backed, content-addressed store of study summaries."""

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)

    @property
    def root(self) -> Path:
        return self._root

    def path_for(self, spec_or_hash: Union[StudySpec, str]) -> Path:
        digest = (
            spec_or_hash.spec_hash()
            if isinstance(spec_or_hash, StudySpec)
            else str(spec_or_hash)
        )
        return self._root / digest[:2] / f"{digest}.json"

    def __contains__(self, spec_or_hash: Union[StudySpec, str]) -> bool:
        return self.path_for(spec_or_hash).exists()

    def _load_payload(self, path: Path) -> Optional[Dict[str, Any]]:
        """Read + verify one entry; quarantine and return ``None`` if corrupt.

        The single classification used by :meth:`get` and :meth:`scrub`:
        unreadable bytes, invalid JSON, a non-object payload and a checksum
        mismatch are all corruption (quarantined); a checksum-less entry
        from an older library version is legacy but valid.
        """
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            self._quarantine(path, f"unreadable entry: {exc}")
            return None
        except json.JSONDecodeError as exc:
            self._quarantine(path, f"invalid JSON: {exc}")
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, "entry is not a JSON object")
            return None
        recorded = payload.get("checksum")
        if recorded is not None and recorded != payload_checksum(payload):
            self._quarantine(path, "checksum mismatch (content damaged)")
            return None
        return payload

    def get(self, spec: StudySpec):
        """The cached :class:`~repro.sim.TrialStudy`, or ``None`` on a miss.

        A missing entry is a silent miss.  An entry that exists but cannot
        be read or parsed — or whose content checksum no longer matches —
        is quarantined to ``<root>/corrupt/`` (warning + health event) and
        then reads as a miss, so the caller re-runs and overwrites it; the
        corrupt bytes stay on disk for diagnosis.  Schema-incompatible
        entries from older library versions are plain misses — they are
        valid files, just stale.
        """
        from ..sim.health import RunHealth
        from ..sim.runner import TrialStudy

        path = self.path_for(spec)
        if not path.exists():
            return None
        payload = self._load_payload(path)
        if payload is None:
            return None
        if payload.get("schema") != _SCHEMA_VERSION:
            return None
        study = TrialStudy(
            results=[record_result(r) for r in payload.get("results", [])],
            label=str(payload.get("label", "")),
            effective_workers=int(payload.get("effective_workers", 1)),
            from_cache=True,
            health=RunHealth.from_dict(payload.get("health") or {}),
        )
        return study

    def put(self, spec: StudySpec, study) -> Path:
        """Persist a study summary; returns the written path.

        Safe under concurrent same-hash writers across processes: each
        writer stages into its own ``mkstemp`` file and publishes with an
        atomic ``os.replace``, so the race resolves to
        *last-writer-wins-or-noop* — both writers serialized the identical
        deterministic payload — and a torn entry is impossible.
        """
        if getattr(study, "from_cache", False):
            # Re-serializing a cached study is a no-op by construction.
            return self.path_for(spec)
        for result in study.results:
            if not hasattr(result, "latencies"):
                raise SpecError("study results lack the summary surface to cache")
        health = getattr(study, "health", None)
        payload = {
            "schema": _SCHEMA_VERSION,
            "hash": spec.spec_hash(),
            "spec": spec.to_dict(),
            "label": study.label,
            "effective_workers": study.effective_workers,
            "results": [result_record(r) for r in study.results],
            # Health rides along so cache hits keep their provenance — a
            # sweep row served from the store shows the same
            # health_retries/failures/demotions as the run that filled it.
            "health": health.to_dict() if health is not None else {},
        }
        payload["checksum"] = payload_checksum(payload)
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: a concurrent reader sees either nothing or a
        # complete entry, never a torn write.
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        plan = faults.active_plan()
        if plan.fires("store-corrupt", hash=payload["hash"]):
            # Injected fault: truncate the just-published entry mid-JSON,
            # simulating a torn write from a crashed process.
            path.write_text(path.read_text()[: max(1, path.stat().st_size // 2)])
        return path

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry to ``<root>/corrupt/`` instead of hiding it."""
        from ..sim import health

        corrupt_dir = self._root / "corrupt"
        target = corrupt_dir / path.name
        try:
            corrupt_dir.mkdir(parents=True, exist_ok=True)
            # A concurrent quarantine of the same entry (another process hit
            # the same corruption first) may already hold the destination:
            # the second mover must neither raise nor clobber the evidence
            # the first one saved, so it picks the next free suffix.
            suffix = 0
            while target.exists():
                suffix += 1
                target = corrupt_dir / f"{path.name}.{suffix}"
            os.replace(path, target)
        except FileNotFoundError:
            # The concurrent mover won outright — the source is gone, the
            # evidence is already in corrupt/.  Nothing to move or warn
            # about a second time.
            health.note(
                "quarantine", "store", f"{path.name}: {reason} (already moved)"
            )
            return
        except OSError:
            # Cannot move it (permissions, cross-device store): leave the
            # evidence in place; the caller still treats the read as a miss.
            target = path
        warnings.warn(
            f"study store entry {path.name} is corrupt ({reason}); "
            f"quarantined to {target} and treating as a cache miss",
            RuntimeWarning,
            stacklevel=3,
        )
        health.note("quarantine", "store", f"{path.name}: {reason}")

    def scrub(self) -> Dict[str, Any]:
        """Verify every entry; quarantine the corrupt ones; report.

        Walks each stored entry through the same read path as :meth:`get`
        (parse + checksum verification), so damage is found *before* a
        sweep trips over it.  Returns ``{"scanned", "ok", "legacy",
        "quarantined"}`` — ``ok`` counts checksum-verified entries,
        ``legacy`` the readable-but-unverifiable ones predating checksums,
        and ``quarantined`` lists the hashes moved to ``<root>/corrupt/``
        by this scrub (``scanned`` is the sum of all three).
        """
        scanned = 0
        ok = 0
        legacy = 0
        quarantined: List[str] = []
        if self._root.exists():
            for path in sorted(self._root.glob("*/*.json")):
                if path.parent.name == "corrupt":
                    continue
                scanned += 1
                payload = self._load_payload(path)
                if payload is None:
                    quarantined.append(path.stem)
                    continue
                if payload.get("checksum") is None:
                    legacy += 1
                else:
                    ok += 1
        return {
            "scanned": scanned,
            "ok": ok,
            "legacy": legacy,
            "quarantined": sorted(quarantined),
        }

    def entries(self) -> List[str]:
        """Hashes of all stored studies (sorted; quarantined entries excluded)."""
        if not self._root.exists():
            return []
        return sorted(
            p.stem
            for p in self._root.glob("*/*.json")
            if p.parent.name != "corrupt"
        )

    def corrupt_entries(self) -> List[str]:
        """File names quarantined to ``<root>/corrupt/`` (sorted)."""
        corrupt = self._root / "corrupt"
        if not corrupt.exists():
            return []
        return sorted(p.name for p in corrupt.glob("*.json"))
