"""StudySpec: the complete, serializable description of a trial study.

A :class:`StudySpec` bundles *what* to run (a protocol spec and an adversary
spec) with *how* to run it (horizon, trial count, seed, early-stop policy)
and *where* (backend, workers).  It round-trips through JSON, hashes stably
(:meth:`StudySpec.spec_hash`) for content-addressed result caching, and
executes through the exact same :func:`repro.sim.run_trials` ladder as the
callable-factory API — a spec-built study is seed-for-seed identical to one
assembled by hand from the same classes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Sequence

from ..errors import SpecError
from .adversary import AdversarySpec
from .pipeline import PipelineSpec
from .protocol import ProtocolSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.runner import TrialStudy

__all__ = ["StudySpec", "canonical_json"]

#: Fields that describe execution placement, not the experiment itself.
#: They are excluded from :meth:`StudySpec.spec_hash` because every backend /
#: worker combination is seed-for-seed identical by the simulator's core
#: invariant — results may be cached across them.  ``pipeline`` and
#: ``streaming`` are derived-metric / memory-policy knobs that likewise
#: cannot change the simulated trials.
_NON_SEMANTIC_FIELDS = ("backend", "workers", "label", "pipeline", "streaming")


def canonical_json(data: Any) -> str:
    """Deterministic JSON encoding used for spec hashing and storage keys."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class StudySpec:
    """Declarative description of a multi-trial study."""

    protocol: ProtocolSpec = field(default_factory=ProtocolSpec)
    adversary: AdversarySpec = field(default_factory=AdversarySpec)
    horizon: int = 4096
    trials: int = 5
    seed: Optional[int] = 20210219
    backend: str = "auto"
    workers: int = 1
    stop_when_drained: bool = False
    keep_trace: bool = False
    label: str = ""
    pipeline: Optional[PipelineSpec] = None
    streaming: bool = False

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise SpecError("horizon must be >= 1")
        if self.trials < 1:
            raise SpecError("trials must be >= 1")
        if self.workers < 1:
            raise SpecError("workers must be >= 1")
        if self.seed is not None and not isinstance(self.seed, int):
            raise SpecError("seed must be an int or None (specs are JSON data)")
        if self.streaming and self.keep_trace:
            raise SpecError("streaming and keep_trace are mutually exclusive")
        from ..sim.backends import available_study_backends

        if self.backend not in available_study_backends():
            raise SpecError(
                f"unknown backend {self.backend!r}; available: "
                f"{', '.join(available_study_backends())}"
            )

    def __hash__(self) -> int:
        # Nested specs hold dicts, so the generated frozen-dataclass hash
        # would raise; hash the canonical serialized form (consistent with
        # __eq__, which compares the same content).
        return hash(canonical_json(self.to_dict()))

    # ------------------------------------------------------------ execution

    def run(
        self,
        collectors: Sequence = (),
        store: Optional[Any] = None,
    ) -> "TrialStudy":
        """Execute the study (or return the cached result from ``store``).

        ``store`` is duck-typed on the get/put surface: a plain
        :class:`~repro.spec.store.StudyStore` or a sharded
        :class:`~repro.serve.ShardedStudyStore` behave identically here.

        Cache lookups key on :meth:`spec_hash`; collector- and
        pipeline-carrying runs are never served from the cache because a
        cached summary carries no per-slot counters to replay them over
        (streaming-only runs still cache: the stored summary surface is
        exactly what a streamed study retains).
        """
        from ..sim.runner import run_trials

        uncacheable = bool(collectors) or self.pipeline is not None
        if store is not None and not uncacheable:
            cached = store.get(self)
            if cached is not None:
                return cached
        study = run_trials(
            protocol_factory=self.protocol.build(),
            adversary_factory=self.adversary.factory(self.horizon),
            horizon=self.horizon,
            trials=self.trials,
            seed=self.seed,
            keep_trace=self.keep_trace,
            stop_when_drained=self.stop_when_drained,
            label=self.display_label,
            collectors=collectors,
            backend=self.backend,
            workers=self.workers,
            pipeline=self.pipeline,
            streaming=self.streaming,
        )
        if store is not None and not uncacheable:
            store.put(self, study)
        return study

    @property
    def display_label(self) -> str:
        return self.label or f"{self.protocol.kind} vs {self.adversary.name}"

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "protocol": self.protocol.to_dict(),
            "adversary": self.adversary.to_dict(),
            "horizon": self.horizon,
            "trials": self.trials,
            "seed": self.seed,
            "backend": self.backend,
            "workers": self.workers,
            "stop_when_drained": self.stop_when_drained,
            "keep_trace": self.keep_trace,
            "label": self.label,
        }
        # Optional execution extras are emitted only when set, so specs that
        # predate them serialize (and hash) exactly as before.
        if self.pipeline is not None:
            data["pipeline"] = self.pipeline.to_dict()
        if self.streaming:
            data["streaming"] = True
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StudySpec":
        if not isinstance(data, Mapping):
            raise SpecError(f"study spec must be a mapping: {data!r}")
        unknown = sorted(
            set(data)
            - {
                "protocol",
                "adversary",
                "horizon",
                "trials",
                "seed",
                "backend",
                "workers",
                "stop_when_drained",
                "keep_trace",
                "label",
                "pipeline",
                "streaming",
            }
        )
        if unknown:
            raise SpecError(f"unknown study spec field(s): {', '.join(unknown)}")
        seed = data.get("seed", 20210219)
        pipeline = data.get("pipeline")
        if pipeline is not None and not isinstance(pipeline, PipelineSpec):
            pipeline = PipelineSpec.from_dict(pipeline)
        return cls(
            protocol=ProtocolSpec.from_dict(data.get("protocol", {"kind": "cjz"})),
            adversary=AdversarySpec.from_dict(data.get("adversary", {})),
            horizon=int(data.get("horizon", 4096)),
            trials=int(data.get("trials", 5)),
            seed=None if seed is None else int(seed),
            backend=str(data.get("backend", "auto")),
            workers=int(data.get("workers", 1)),
            stop_when_drained=bool(data.get("stop_when_drained", False)),
            keep_trace=bool(data.get("keep_trace", False)),
            label=str(data.get("label", "")),
            pipeline=pipeline,
            streaming=bool(data.get("streaming", False)),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "StudySpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid study spec JSON: {exc}") from exc
        return cls.from_dict(data)

    def spec_hash(self) -> str:
        """Content address of the study's *semantic* identity.

        Execution-placement fields (backend, workers) and the cosmetic label
        are excluded: they cannot change results, so caching across them is
        sound and lets e.g. a parallel sweep reuse a serial run's results.
        """
        data = self.to_dict()
        for key in _NON_SEMANTIC_FIELDS:
            data.pop(key, None)
        return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()

    # ------------------------------------------------------------ overrides

    def with_overrides(self, overrides: Mapping[str, Any]) -> "StudySpec":
        """A copy with dotted-path overrides applied.

        Paths address the :meth:`to_dict` representation, e.g.
        ``"adversary.jamming.params.fraction"``, ``"protocol.params.c3"`` or
        plain ``"horizon"``.  This is the primitive the sweep engine expands
        grids with.
        """
        if not overrides:
            return self
        data = self.to_dict()
        for path, value in overrides.items():
            _set_dotted(data, path, value)
        return self.from_dict(data)

    def with_execution(
        self,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        streaming: Optional[bool] = None,
    ) -> "StudySpec":
        """A copy with execution placement changed (hash-neutral)."""
        updates: Dict[str, Any] = {}
        if backend is not None:
            updates["backend"] = backend
        if workers is not None:
            updates["workers"] = workers
        if streaming is not None:
            updates["streaming"] = streaming
        return replace(self, **updates) if updates else self

    def with_pipeline(self, pipeline: Optional[PipelineSpec]) -> "StudySpec":
        """A copy with a metric pipeline attached (hash-neutral)."""
        return replace(self, pipeline=pipeline)


def _set_dotted(data: Dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    if not all(parts):
        raise SpecError(f"invalid override path {path!r}")
    cursor: Dict[str, Any] = data
    for part in parts[:-1]:
        nxt = cursor.get(part)
        if not isinstance(nxt, dict):
            nxt = {}
            cursor[part] = nxt
        cursor = nxt
    cursor[parts[-1]] = value
