"""Oblivious schedule adversaries: fully precomputed arrival and jamming plans."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import AdversaryAction
from .base import Adversary

__all__ = ["ScheduleAdversary"]


class ScheduleAdversary(Adversary):
    """Replay explicit arrival and jamming schedules.

    Useful for regression tests (fully deterministic workloads) and for
    replaying adversary traces captured from adaptive runs.
    """

    name = "schedule"
    spec_kind = "schedule"
    precompilable = True

    def __init__(
        self,
        arrivals: Mapping[int, int] | Iterable[Tuple[int, int]] = (),
        jammed_slots: Iterable[int] = (),
    ) -> None:
        items = arrivals.items() if isinstance(arrivals, Mapping) else arrivals
        self._arrivals: Dict[int, int] = {}
        for slot, count in items:
            if slot < 1 or count < 0:
                raise ConfigurationError("invalid arrival schedule entry")
            self._arrivals[int(slot)] = self._arrivals.get(int(slot), 0) + int(count)
        self._jammed: Set[int] = set()
        for slot in jammed_slots:
            if slot < 1:
                raise ConfigurationError("jammed slots must be >= 1")
            self._jammed.add(int(slot))

    @classmethod
    def single_batch(cls, count: int, slot: int = 1) -> "ScheduleAdversary":
        """A pure batch workload: ``count`` nodes at ``slot``, no jamming."""
        return cls(arrivals={slot: count})

    @property
    def total_arrivals(self) -> int:
        return sum(self._arrivals.values())

    @property
    def jammed_slots(self) -> Set[int]:
        return set(self._jammed)

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        return None

    def action_for_slot(self, slot: int) -> AdversaryAction:
        return AdversaryAction(
            arrivals=self._arrivals.get(slot, 0),
            jam=slot in self._jammed,
        )

    def arrivals_exhausted(self, slot: int) -> bool:
        return not self._arrivals or slot >= max(self._arrivals)

    def spec_params(self) -> dict:
        return {
            "arrivals": [[slot, count] for slot, count in sorted(self._arrivals.items())],
            "jammed_slots": sorted(self._jammed),
        }
