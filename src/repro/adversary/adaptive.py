"""Fully adaptive adversaries that couple arrivals and jamming to feedback."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..types import AdversaryAction, Feedback, SlotObservation
from .base import Adversary

__all__ = ["AdaptiveSuccessChaser"]


class AdaptiveSuccessChaser(Adversary):
    """Adaptive attack that reacts to every observed success.

    After each success the adversary both injects a small batch of fresh nodes
    and jams a short burst of slots.  The intuition is to attack the paper's
    algorithm at its synchronization points: successes are exactly the events
    that move nodes between phases, so polluting the slots right after a
    success is the most disruptive thing an adaptive Eve can do while staying
    within a constant-fraction jamming budget and an arrival budget of
    ``O(t / f(t))``.

    Parameters
    ----------
    jam_fraction:
        Cap on the fraction of slots jammed so far.
    arrival_budget_per_success:
        Number of nodes injected immediately after each observed success.
    total_arrival_budget:
        Hard cap on the number of injected nodes (``None`` for unlimited).
    jam_burst:
        Number of slots to jam after each success (budget permitting).
    """

    name = "adaptive-success-chaser"
    spec_kind = "adaptive-success-chaser"

    def __init__(
        self,
        jam_fraction: float = 0.2,
        arrival_budget_per_success: int = 2,
        total_arrival_budget: Optional[int] = None,
        jam_burst: int = 4,
        seed_arrivals: int = 1,
    ) -> None:
        if not 0.0 <= jam_fraction < 1.0:
            raise ConfigurationError("jam_fraction must be in [0, 1)")
        if arrival_budget_per_success < 0 or jam_burst < 0 or seed_arrivals < 0:
            raise ConfigurationError("budgets must be non-negative")
        self._jam_fraction = jam_fraction
        self._per_success = arrival_budget_per_success
        self._total_budget = total_arrival_budget
        self._jam_burst = jam_burst
        self._seed_arrivals = seed_arrivals
        self._pending_arrivals = 0
        self._pending_jam = 0
        self._injected = 0
        self._jammed = 0
        self._slots = 0

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        self._pending_arrivals = 0
        self._pending_jam = 0
        self._injected = 0
        self._jammed = 0
        self._slots = 0

    def action_for_slot(self, slot: int) -> AdversaryAction:
        self._slots += 1
        arrivals = 0
        if slot == 1 and self._seed_arrivals:
            arrivals += self._seed_arrivals
        if self._pending_arrivals:
            arrivals += self._pending_arrivals
            self._pending_arrivals = 0
        if self._total_budget is not None:
            remaining = max(0, self._total_budget - self._injected)
            arrivals = min(arrivals, remaining)
        self._injected += arrivals

        jam = False
        jam_budget = math.floor(self._jam_fraction * self._slots)
        if self._pending_jam > 0 and self._jammed < jam_budget:
            jam = True
            self._pending_jam -= 1
            self._jammed += 1
        return AdversaryAction(arrivals=arrivals, jam=jam)

    def arrivals_exhausted(self, slot: int) -> bool:
        return (
            self._total_budget is not None
            and self._injected >= self._total_budget
            and self._pending_arrivals == 0
        )

    def observe(self, observation: SlotObservation) -> None:
        if observation.feedback is Feedback.SUCCESS:
            self._pending_arrivals += self._per_success
            self._pending_jam = self._jam_burst

    @property
    def injected_nodes(self) -> int:
        return self._injected

    @property
    def jammed_slots(self) -> int:
        return self._jammed

    def spec_params(self) -> dict:
        return {
            "jam_fraction": self._jam_fraction,
            "arrival_budget_per_success": self._per_success,
            "total_arrival_budget": self._total_budget,
            "jam_burst": self._jam_burst,
            "seed_arrivals": self._seed_arrivals,
        }
