"""Adversary interface and composition glue."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..types import AdversaryAction, SlotObservation

__all__ = ["Adversary", "ArrivalStrategy", "JammingStrategy", "ComposedAdversary"]


class Adversary(abc.ABC):
    """Decides arrivals and jamming, slot by slot.

    The simulator calls :meth:`setup` once, then alternates
    :meth:`action_for_slot` (beginning of each slot) and :meth:`observe`
    (end of each slot).  Adaptive adversaries may key their decisions off the
    observation history; oblivious adversaries ignore it.  The adversary sees
    exactly the feedback the nodes see — in particular it cannot distinguish
    silence from collision when the channel has no collision detection.
    """

    name: str = "adversary"

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        """Prepare internal state; ``horizon`` is the planned number of slots, if known."""

    @abc.abstractmethod
    def action_for_slot(self, slot: int) -> AdversaryAction:
        """Return the arrivals/jamming decision for global slot ``slot``."""

    def observe(self, observation: SlotObservation) -> None:
        """Consume the channel feedback of the slot that just ended."""

    def describe(self) -> str:
        return self.name


class ArrivalStrategy(abc.ABC):
    """Produces the number of node injections for each slot."""

    name: str = "arrivals"

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        """Prepare internal state."""

    @abc.abstractmethod
    def arrivals_for_slot(self, slot: int) -> int:
        """Number of nodes injected at the beginning of ``slot``."""

    def observe(self, observation: SlotObservation) -> None:
        """Optional feedback hook for adaptive arrival strategies."""


class JammingStrategy(abc.ABC):
    """Decides which slots are jammed."""

    name: str = "jamming"

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        """Prepare internal state."""

    @abc.abstractmethod
    def jam_slot(self, slot: int) -> bool:
        """Whether to jam ``slot``."""

    def observe(self, observation: SlotObservation) -> None:
        """Optional feedback hook for adaptive jamming strategies."""


class ComposedAdversary(Adversary):
    """Adversary assembled from independent arrival and jamming strategies."""

    def __init__(self, arrivals: ArrivalStrategy, jamming: JammingStrategy) -> None:
        self._arrivals = arrivals
        self._jamming = jamming
        self.name = f"{arrivals.name}+{jamming.name}"

    @property
    def arrivals(self) -> ArrivalStrategy:
        return self._arrivals

    @property
    def jamming(self) -> JammingStrategy:
        return self._jamming

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        # Each strategy gets its own independent stream so that, e.g., pairing
        # the same arrival pattern with different jamming strategies keeps the
        # arrival randomness identical.
        arrivals_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
        jamming_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
        self._arrivals.setup(arrivals_rng, horizon)
        self._jamming.setup(jamming_rng, horizon)

    def action_for_slot(self, slot: int) -> AdversaryAction:
        return AdversaryAction(
            arrivals=self._arrivals.arrivals_for_slot(slot),
            jam=self._jamming.jam_slot(slot),
        )

    def observe(self, observation: SlotObservation) -> None:
        self._arrivals.observe(observation)
        self._jamming.observe(observation)
