"""Adversary interface and composition glue."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..types import AdversaryAction, SlotObservation

__all__ = [
    "Adversary",
    "ArrivalStrategy",
    "JammingStrategy",
    "ComposedAdversary",
    "PrecompiledSchedule",
]


@dataclass(frozen=True)
class PrecompiledSchedule:
    """Whole-horizon adversary plan as arrays indexed by slot (index 0 unused).

    Produced by :meth:`Adversary.precompile` for oblivious adversaries.  The
    arrays must be exactly what per-slot :meth:`Adversary.action_for_slot`
    calls would have produced after :meth:`Adversary.setup` — the vectorized
    slot kernel relies on that equality for bit-for-bit reproducibility.
    """

    arrivals: np.ndarray  # int array, length horizon + 1
    jammed: np.ndarray  # bool array, length horizon + 1

    def __post_init__(self) -> None:
        if self.arrivals.shape != self.jammed.shape:
            raise ValueError("arrivals and jammed arrays must have equal length")

    @property
    def horizon(self) -> int:
        return len(self.arrivals) - 1

    @property
    def total_arrivals(self) -> int:
        return int(self.arrivals.sum())


class Adversary(abc.ABC):
    """Decides arrivals and jamming, slot by slot.

    The simulator calls :meth:`setup` once, then alternates
    :meth:`action_for_slot` (beginning of each slot) and :meth:`observe`
    (end of each slot).  Adaptive adversaries may key their decisions off the
    observation history; oblivious adversaries ignore it.  The adversary sees
    exactly the feedback the nodes see — in particular it cannot distinguish
    silence from collision when the channel has no collision detection.
    """

    name: str = "adversary"

    #: Oblivious adversaries (decisions never depend on :meth:`observe`) may
    #: set this True to let the vectorized kernel materialize their whole
    #: schedule up front via :meth:`precompile`.
    precompilable: bool = False

    #: registry key of this adversary in :data:`repro.spec.ADVERSARIES`, or
    #: ``None`` for adversaries without a declarative description.
    spec_kind: Optional[str] = None

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        """Prepare internal state; ``horizon`` is the planned number of slots, if known."""

    @abc.abstractmethod
    def action_for_slot(self, slot: int) -> AdversaryAction:
        """Return the arrivals/jamming decision for global slot ``slot``."""

    def observe(self, observation: SlotObservation) -> None:
        """Consume the channel feedback of the slot that just ended."""

    def arrivals_exhausted(self, slot: int) -> bool:
        """Whether the adversary can no longer inject nodes after ``slot``.

        Used by ``stop_when_drained`` runs: the simulator only stops on an
        empty system once this returns True.  The default is the conservative
        False (the adversary might still inject); oblivious adversaries with a
        bounded plan should override.
        """
        return False

    def precompile(self, horizon: int) -> Optional[PrecompiledSchedule]:
        """Materialize the whole-horizon schedule, or ``None`` if adaptive.

        Must be called after :meth:`setup`.  The generic implementation
        replays :meth:`action_for_slot` slot by slot, which is bit-identical
        to the live loop by construction; subclasses with vectorizable
        randomness may override with batched draws.
        """
        if not self.precompilable:
            return None
        arrivals = np.zeros(horizon + 1, dtype=np.int64)
        jammed = np.zeros(horizon + 1, dtype=bool)
        for slot in range(1, horizon + 1):
            action = self.action_for_slot(slot)
            arrivals[slot] = action.arrivals
            jammed[slot] = action.jam
        return PrecompiledSchedule(arrivals=arrivals, jammed=jammed)

    def describe(self) -> str:
        return self.name

    # ------------------------------------------------------------ spec layer

    def spec_params(self) -> dict:
        """JSON-serializable constructor parameters of this instance.

        The reconstruction contract matches
        :meth:`repro.protocols.base.Protocol.spec_params`: rebuilding from
        ``(spec_kind, spec_params())`` must yield an adversary that consumes
        randomness and acts identically.
        """
        return {}

    def to_spec(self):
        """The declarative :class:`~repro.spec.AdversarySpec` for this instance."""
        from ..errors import SpecError
        from ..spec.adversary import AdversarySpec

        if self.spec_kind is None:
            raise SpecError(
                f"adversary {self.name!r} has no registered spec kind and "
                "cannot be serialized"
            )
        return AdversarySpec(kind=self.spec_kind, params=self.spec_params())

    @staticmethod
    def from_spec(spec, horizon: Optional[int] = None) -> "Adversary":
        """Build a fresh instance from a :class:`~repro.spec.AdversarySpec`.

        Inverse of :meth:`to_spec` up to instance identity.  ``horizon``
        resolves horizon-dependent defaults and the proof adversaries'
        mandatory horizon argument.  Accepts a spec object or its
        ``to_dict`` mapping.
        """
        from ..spec.adversary import AdversarySpec

        if not isinstance(spec, AdversarySpec):
            spec = AdversarySpec.from_dict(spec)
        return spec.build(horizon)


class ArrivalStrategy(abc.ABC):
    """Produces the number of node injections for each slot."""

    name: str = "arrivals"

    #: registry key in :data:`repro.spec.ARRIVAL_STRATEGIES` (``None`` when
    #: the strategy has no declarative description).
    spec_kind: Optional[str] = None

    #: True for strategies whose decisions depend on :meth:`observe`.
    adaptive: bool = False

    #: True when the strategy draws from its generator only inside
    #: :meth:`setup` and :meth:`precompile` — after ``precompile`` returns it
    #: must never touch the generator again (strategies that keep a
    #: reference for lazy per-slot draws must drop it there; see
    #: ``RandomFractionJamming.precompile``).  Opting in lets the batched
    #: study kernel hand the strategy a pooled generator that is reseeded
    #: between trials instead of a freshly constructed one.  All bundled
    #: oblivious strategies qualify.
    transient_rng: bool = False

    #: False when the strategy never draws from its generator at all
    #: (deterministic plans), letting the batched study kernel skip the
    #: reseed entirely.  Only meaningful together with ``transient_rng``.
    consumes_rng: bool = True

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        """Prepare internal state."""

    @abc.abstractmethod
    def arrivals_for_slot(self, slot: int) -> int:
        """Number of nodes injected at the beginning of ``slot``."""

    def observe(self, observation: SlotObservation) -> None:
        """Optional feedback hook for adaptive arrival strategies."""

    def exhausted(self, slot: int) -> bool:
        """Whether no further arrivals can occur after ``slot`` (conservative False)."""
        return False

    def precompile(self, horizon: int) -> Optional[np.ndarray]:
        """Arrivals for slots ``1..horizon`` as an array (index 0 unused).

        Must be called after :meth:`setup` and must consume randomness exactly
        as per-slot :meth:`arrivals_for_slot` calls would.  Returns ``None``
        for adaptive strategies.
        """
        if self.adaptive:
            return None
        arrivals = np.zeros(horizon + 1, dtype=np.int64)
        for slot in range(1, horizon + 1):
            arrivals[slot] = self.arrivals_for_slot(slot)
        return arrivals

    def spec_params(self) -> dict:
        """JSON-serializable constructor parameters (see :class:`Adversary`)."""
        return {}


class JammingStrategy(abc.ABC):
    """Decides which slots are jammed."""

    name: str = "jamming"

    #: registry key in :data:`repro.spec.JAMMING_STRATEGIES` (``None`` when
    #: the strategy has no declarative description).
    spec_kind: Optional[str] = None

    #: True for strategies whose decisions depend on :meth:`observe`.
    adaptive: bool = False

    #: Same contract as :attr:`ArrivalStrategy.transient_rng`.
    transient_rng: bool = False

    #: Same contract as :attr:`ArrivalStrategy.consumes_rng`.
    consumes_rng: bool = True

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        """Prepare internal state."""

    @abc.abstractmethod
    def jam_slot(self, slot: int) -> bool:
        """Whether to jam ``slot``."""

    def observe(self, observation: SlotObservation) -> None:
        """Optional feedback hook for adaptive jamming strategies."""

    def precompile(self, horizon: int) -> Optional[np.ndarray]:
        """Jam decisions for slots ``1..horizon`` as a bool array (index 0 unused).

        Same contract as :meth:`ArrivalStrategy.precompile`.
        """
        if self.adaptive:
            return None
        jammed = np.zeros(horizon + 1, dtype=bool)
        for slot in range(1, horizon + 1):
            jammed[slot] = self.jam_slot(slot)
        return jammed

    def spec_params(self) -> dict:
        """JSON-serializable constructor parameters (see :class:`Adversary`)."""
        return {}


class ComposedAdversary(Adversary):
    """Adversary assembled from independent arrival and jamming strategies."""

    def __init__(self, arrivals: ArrivalStrategy, jamming: JammingStrategy) -> None:
        self._arrivals = arrivals
        self._jamming = jamming
        self.name = f"{arrivals.name}+{jamming.name}"

    @property
    def arrivals(self) -> ArrivalStrategy:
        return self._arrivals

    @property
    def jamming(self) -> JammingStrategy:
        return self._jamming

    @property
    def precompilable(self) -> bool:  # type: ignore[override]
        return not (self._arrivals.adaptive or self._jamming.adaptive)

    def strategy_seeds(self, rng: np.random.Generator) -> tuple:
        """Draw the two per-strategy seeds exactly as :meth:`setup` does.

        Exposed so the batched study kernel can reproduce the strategy
        streams (``default_rng(seed)``) without routing every trial through
        freshly constructed generators.
        """
        return (
            int(rng.integers(0, 2**63 - 1)),
            int(rng.integers(0, 2**63 - 1)),
        )

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        # Each strategy gets its own independent stream so that, e.g., pairing
        # the same arrival pattern with different jamming strategies keeps the
        # arrival randomness identical.
        arrivals_seed, jamming_seed = self.strategy_seeds(rng)
        self._arrivals.setup(np.random.default_rng(arrivals_seed), horizon)
        self._jamming.setup(np.random.default_rng(jamming_seed), horizon)

    def action_for_slot(self, slot: int) -> AdversaryAction:
        return AdversaryAction(
            arrivals=self._arrivals.arrivals_for_slot(slot),
            jam=self._jamming.jam_slot(slot),
        )

    def observe(self, observation: SlotObservation) -> None:
        self._arrivals.observe(observation)
        self._jamming.observe(observation)

    def arrivals_exhausted(self, slot: int) -> bool:
        return self._arrivals.exhausted(slot)

    def precompile(self, horizon: int) -> Optional[PrecompiledSchedule]:
        arrivals = self._arrivals.precompile(horizon)
        jammed = self._jamming.precompile(horizon)
        if arrivals is None or jammed is None:
            return None
        return PrecompiledSchedule(arrivals=arrivals, jammed=jammed)

    def to_spec(self):
        """Composed adversaries serialize as their two strategy specs."""
        from ..errors import SpecError
        from ..spec.adversary import AdversarySpec, StrategySpec

        if self._arrivals.spec_kind is None or self._jamming.spec_kind is None:
            missing = (
                self._arrivals.name
                if self._arrivals.spec_kind is None
                else self._jamming.name
            )
            raise SpecError(
                f"strategy {missing!r} has no registered spec kind; the "
                "composed adversary cannot be serialized"
            )
        return AdversarySpec(
            arrivals=StrategySpec(
                kind=self._arrivals.spec_kind, params=self._arrivals.spec_params()
            ),
            jamming=StrategySpec(
                kind=self._jamming.spec_kind, params=self._jamming.spec_params()
            ),
            label=self.name,
        )
