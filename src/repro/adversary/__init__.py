"""Adversary framework: arrival patterns and jamming strategies.

The paper's adversary ("Eve") is adaptive: in each slot she observes the same
channel feedback as the nodes (no collision detection) and decides how many
new nodes to inject and whether to jam the slot.  This package provides:

* :class:`Adversary` — the interface the simulator drives;
* composable :class:`ArrivalStrategy` and :class:`JammingStrategy` pieces and
  the :class:`ComposedAdversary` glue;
* the specific adversary strategies used in the paper's proofs (lower-bound
  adversaries of Lemma 4.1 / Theorem 1.3 / Theorem 4.2) and in Corollary 3.6
  (the "smooth" adversary);
* precomputed (oblivious) schedule adversaries for reproducible workloads.
"""

from .base import (
    Adversary,
    ArrivalStrategy,
    ComposedAdversary,
    JammingStrategy,
    PrecompiledSchedule,
)
from .arrivals import (
    NoArrivals,
    BatchArrivals,
    PoissonArrivals,
    UniformRandomArrivals,
    BurstyArrivals,
    ScheduledArrivals,
)
from .jamming import (
    NoJamming,
    RandomFractionJamming,
    PeriodicJamming,
    FrontLoadedJamming,
    BudgetedJamming,
    ReactiveJamming,
)
from .adaptive import AdaptiveSuccessChaser
from .lower_bound import LowerBoundAdversary, NonAdaptiveKillerAdversary
from .smooth import SmoothAdversary
from .schedules import ScheduleAdversary

__all__ = [
    "Adversary",
    "ArrivalStrategy",
    "JammingStrategy",
    "ComposedAdversary",
    "PrecompiledSchedule",
    "NoArrivals",
    "BatchArrivals",
    "PoissonArrivals",
    "UniformRandomArrivals",
    "BurstyArrivals",
    "ScheduledArrivals",
    "NoJamming",
    "RandomFractionJamming",
    "PeriodicJamming",
    "FrontLoadedJamming",
    "BudgetedJamming",
    "ReactiveJamming",
    "AdaptiveSuccessChaser",
    "LowerBoundAdversary",
    "NonAdaptiveKillerAdversary",
    "SmoothAdversary",
    "ScheduleAdversary",
]
