"""Jamming strategies: which slots the adversary disrupts."""

from __future__ import annotations

import math
from typing import Optional, Set

import numpy as np

from ..errors import ConfigurationError
from ..functions import RateFunction
from ..types import Feedback, SlotObservation
from .base import JammingStrategy

__all__ = [
    "NoJamming",
    "RandomFractionJamming",
    "PeriodicJamming",
    "FrontLoadedJamming",
    "BudgetedJamming",
    "ReactiveJamming",
]


class NoJamming(JammingStrategy):
    """The benign channel: no slot is ever jammed."""

    name = "no-jamming"
    spec_kind = "no-jamming"
    transient_rng = True
    consumes_rng = False

    def jam_slot(self, slot: int) -> bool:
        return False

    def precompile(self, horizon: int) -> np.ndarray:
        return np.zeros(horizon + 1, dtype=bool)


class RandomFractionJamming(JammingStrategy):
    """Jam each slot independently with probability ``fraction``.

    This realizes the paper's worst-case regime (a constant fraction of all
    slots jammed) with an oblivious adversary.
    """

    name = "random-fraction"
    spec_kind = "random-fraction"
    transient_rng = True

    def __init__(self, fraction: float, last_slot: Optional[int] = None) -> None:
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError("fraction must be in [0, 1)")
        self._fraction = fraction
        self._last_slot = last_slot
        self._rng: Optional[np.random.Generator] = None
        self.name = f"random-jam({fraction:.0%})"

    @property
    def fraction(self) -> float:
        return self._fraction

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        self._rng = rng

    def jam_slot(self, slot: int) -> bool:
        if self._fraction == 0.0:
            return False
        if self._rng is None:
            raise ConfigurationError("RandomFractionJamming used before setup()")
        if self._last_slot is not None and slot > self._last_slot:
            return False
        return bool(self._rng.random() < self._fraction)

    def precompile(self, horizon: int) -> np.ndarray:
        jammed = np.zeros(horizon + 1, dtype=bool)
        if self._fraction == 0.0:
            return jammed
        if self._rng is None:
            raise ConfigurationError("RandomFractionJamming used before setup()")
        last = horizon if self._last_slot is None else min(self._last_slot, horizon)
        if last >= 1:
            # Batched uniforms consume the generator exactly like sequential
            # per-slot draws, keeping replay bit-identical.
            jammed[1 : last + 1] = self._rng.random(last) < self._fraction
        # The transient_rng contract: the generator may be pooled and
        # reseeded for another trial after precompilation, so drop it — a
        # stray jam_slot() call now fails loudly instead of drawing from a
        # foreign stream.
        self._rng = None
        return jammed

    def spec_params(self) -> dict:
        return {"fraction": self._fraction, "last_slot": self._last_slot}


class PeriodicJamming(JammingStrategy):
    """Jam every ``period``-th slot (deterministic constant fraction)."""

    name = "periodic"
    spec_kind = "periodic"
    transient_rng = True
    consumes_rng = False

    def __init__(self, period: int, offset: int = 0) -> None:
        if period < 1:
            raise ConfigurationError("period must be >= 1")
        self._period = period
        self._offset = offset % period
        self.name = f"periodic-jam(1/{period})"

    def jam_slot(self, slot: int) -> bool:
        return slot % self._period == self._offset

    def precompile(self, horizon: int) -> np.ndarray:
        jammed = np.arange(horizon + 1) % self._period == self._offset
        jammed[0] = False
        return jammed

    def spec_params(self) -> dict:
        return {"period": self._period, "offset": self._offset}


class FrontLoadedJamming(JammingStrategy):
    """Jam the first ``count`` slots and nothing afterwards.

    This is the pattern the paper's lower-bound proofs use to starve a lone
    node running standard exponential backoff: by the time jamming stops, the
    node's sending probability has decayed too far.
    """

    name = "front-loaded"
    spec_kind = "front-loaded"
    transient_rng = True
    consumes_rng = False

    def __init__(self, count: int) -> None:
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        self._count = count
        self.name = f"front-jam({count})"

    def jam_slot(self, slot: int) -> bool:
        return slot <= self._count

    def precompile(self, horizon: int) -> np.ndarray:
        jammed = np.zeros(horizon + 1, dtype=bool)
        jammed[1 : min(self._count, horizon) + 1] = True
        return jammed

    def spec_params(self) -> dict:
        return {"count": self._count}


class BudgetedJamming(JammingStrategy):
    """Jam uniformly at random subject to the paper's budget ``d_t <= t / (c · g(t))``.

    The strategy pre-draws, for a given horizon, a random set of jammed slots
    whose size respects the budget implied by the jamming function ``g``.
    """

    name = "budgeted"
    spec_kind = "budgeted"
    transient_rng = True

    def __init__(self, g: RateFunction, budget_constant: float = 4.0) -> None:
        if budget_constant <= 0:
            raise ConfigurationError("budget_constant must be positive")
        self._g = g
        self._constant = budget_constant
        self._jammed: Set[int] = set()
        self.name = f"budgeted-jam({g.name}/{budget_constant:g})"

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        if horizon is None:
            raise ConfigurationError("BudgetedJamming requires a known horizon")
        budget = int(horizon / (self._constant * self._g(float(horizon))))
        budget = max(0, min(budget, horizon))
        if budget:
            chosen = rng.choice(np.arange(1, horizon + 1), size=budget, replace=False)
            self._jammed = {int(s) for s in chosen}
        else:
            self._jammed = set()

    @property
    def jammed_slots(self) -> Set[int]:
        return set(self._jammed)

    def jam_slot(self, slot: int) -> bool:
        return slot in self._jammed

    def precompile(self, horizon: int) -> np.ndarray:
        jammed = np.zeros(horizon + 1, dtype=bool)
        for slot in self._jammed:
            if slot <= horizon:
                jammed[slot] = True
        return jammed

    def spec_params(self) -> dict:
        from ..spec.rates import rate_function_to_spec

        return {
            "g": rate_function_to_spec(self._g),
            "budget_constant": self._constant,
        }


class ReactiveJamming(JammingStrategy):
    """Adaptive jamming that spends its budget right after observed successes.

    After hearing a success the adversary jams the next ``burst`` slots,
    hoping to disrupt the synchronization the success provided — the natural
    adaptive attack against the paper's algorithm, whose Phase-2/Phase-3
    transitions are triggered by successes.  The total number of jammed slots
    is capped at ``fraction`` of slots seen so far, so the attack stays within
    the constant-fraction regime.
    """

    name = "reactive"
    spec_kind = "reactive"
    adaptive = True

    def __init__(self, fraction: float, burst: int = 8) -> None:
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError("fraction must be in [0, 1)")
        if burst < 1:
            raise ConfigurationError("burst must be >= 1")
        self._fraction = fraction
        self._burst = burst
        self._pending = 0
        self._jammed_so_far = 0
        self._slots_seen = 0
        self.name = f"reactive-jam({fraction:.0%},burst={burst})"

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        self._pending = 0
        self._jammed_so_far = 0
        self._slots_seen = 0

    def jam_slot(self, slot: int) -> bool:
        self._slots_seen += 1
        budget = math.floor(self._fraction * self._slots_seen)
        if self._pending > 0 and self._jammed_so_far < budget:
            self._pending -= 1
            self._jammed_so_far += 1
            return True
        return False

    def observe(self, observation: SlotObservation) -> None:
        if observation.feedback is Feedback.SUCCESS:
            self._pending = self._burst

    def spec_params(self) -> dict:
        return {"fraction": self._fraction, "burst": self._burst}
