"""The "smooth" adversary of Corollary 3.6.

An adversary strategy is *smooth* over an interval ``[1, t]`` if, for every
suffix ``[t - j, t]``, the number of arrivals in the suffix is ``O(j / f(j))``
and the number of jammed slots is ``O(j / g(j))``.  Under a smooth strategy,
Corollary 3.6 states that every node arrived before slot ``t - j`` has left the
system by slot ``t`` w.h.p. in ``j`` — i.e. the system keeps draining.

:class:`SmoothAdversary` constructs such a strategy by spreading arrivals and
jammed slots evenly so that every suffix budget holds by construction, and it
exposes :meth:`verify_smoothness` so tests can check the property directly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set

import numpy as np

from ..errors import ConfigurationError
from ..functions import RateFunction
from ..types import AdversaryAction
from .base import Adversary

__all__ = ["SmoothAdversary"]


class SmoothAdversary(Adversary):
    """Evenly spread arrivals and jamming satisfying the Corollary 3.6 budgets."""

    name = "smooth"
    spec_kind = "smooth"
    precompilable = True  # schedules are fully materialized in setup()

    def __init__(
        self,
        horizon: int,
        f: RateFunction,
        g: RateFunction,
        arrival_constant: float = 8.0,
        jam_constant: float = 8.0,
    ) -> None:
        if horizon < 2:
            raise ConfigurationError("horizon must be >= 2")
        if arrival_constant <= 0 or jam_constant <= 0:
            raise ConfigurationError("constants must be positive")
        self._horizon = horizon
        self._f = f
        self._g = g
        self._arrival_constant = arrival_constant
        self._jam_constant = jam_constant
        self._arrival_schedule: Dict[int, int] = {}
        self._jam_schedule: Set[int] = set()
        self.name = f"smooth(f={f.name}, g={g.name})"

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        t = self._horizon
        total_arrivals = max(1, int(t / (self._arrival_constant * self._f(float(t)))))
        total_jams = int(t / (self._jam_constant * self._g(float(t))))
        # Spread arrivals at (approximately) even spacing; even spacing makes
        # every suffix budget hold automatically because the density is
        # uniform and the budget functions are (sub-)logarithmically varying.
        self._arrival_schedule = {}
        if total_arrivals > 0:
            spacing = t / total_arrivals
            for index in range(total_arrivals):
                slot = min(t, max(1, int(round((index + 0.5) * spacing))))
                self._arrival_schedule[slot] = self._arrival_schedule.get(slot, 0) + 1
        self._jam_schedule = set()
        if total_jams > 0:
            spacing = t / total_jams
            for index in range(total_jams):
                slot = min(t, max(1, int(round((index + 0.5) * spacing)) + 1))
                self._jam_schedule.add(slot)

    @property
    def total_arrivals(self) -> int:
        return sum(self._arrival_schedule.values())

    @property
    def total_jams(self) -> int:
        return len(self._jam_schedule)

    def action_for_slot(self, slot: int) -> AdversaryAction:
        return AdversaryAction(
            arrivals=self._arrival_schedule.get(slot, 0),
            jam=slot in self._jam_schedule,
        )

    def arrivals_exhausted(self, slot: int) -> bool:
        return not self._arrival_schedule or slot >= max(self._arrival_schedule)

    def arrivals_in_suffix(self, j: int) -> int:
        """Number of arrivals in the last ``j`` slots of the horizon."""
        start = self._horizon - j
        return sum(c for s, c in self._arrival_schedule.items() if s >= start)

    def jams_in_suffix(self, j: int) -> int:
        start = self._horizon - j
        return sum(1 for s in self._jam_schedule if s >= start)

    def verify_smoothness(
        self,
        suffix_lengths: Optional[List[int]] = None,
        slack: float = 4.0,
    ) -> bool:
        """Check the suffix budgets ``O(j / f(j))`` and ``O(j / g(j))`` hold."""
        if suffix_lengths is None:
            suffix_lengths = [
                2**k for k in range(2, int(math.log2(self._horizon)) + 1)
            ]
        for j in suffix_lengths:
            j = min(j, self._horizon - 1)
            if j < 2:
                continue
            arrival_budget = slack * j / (self._arrival_constant * self._f(float(j)))
            jam_budget = slack * j / (self._jam_constant * self._g(float(j))) + 1
            if self.arrivals_in_suffix(j) > arrival_budget:
                return False
            if self.jams_in_suffix(j) > jam_budget:
                return False
        return True

    def spec_params(self) -> dict:
        from ..spec.rates import rate_function_to_spec

        return {
            "f": rate_function_to_spec(self._f),
            "g": rate_function_to_spec(self._g),
            "arrival_constant": self._arrival_constant,
            "jam_constant": self._jam_constant,
        }
