"""Arrival strategies: when and how many nodes the adversary injects."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import SlotObservation
from .base import ArrivalStrategy

__all__ = [
    "NoArrivals",
    "BatchArrivals",
    "PoissonArrivals",
    "UniformRandomArrivals",
    "BurstyArrivals",
    "ScheduledArrivals",
]


class NoArrivals(ArrivalStrategy):
    """No nodes ever arrive (useful when the simulator pre-seeds a batch)."""

    name = "no-arrivals"
    spec_kind = "no-arrivals"
    transient_rng = True
    consumes_rng = False

    def arrivals_for_slot(self, slot: int) -> int:
        return 0

    def exhausted(self, slot: int) -> bool:
        return True

    def precompile(self, horizon: int) -> np.ndarray:
        return np.zeros(horizon + 1, dtype=np.int64)


class BatchArrivals(ArrivalStrategy):
    """Inject ``count`` nodes simultaneously at ``slot`` (the paper's batch setting)."""

    name = "batch"
    spec_kind = "batch"
    transient_rng = True
    consumes_rng = False

    def __init__(self, count: int, slot: int = 1) -> None:
        if count < 0:
            raise ConfigurationError("batch count must be non-negative")
        if slot < 1:
            raise ConfigurationError("batch slot must be >= 1")
        self._count = count
        self._slot = slot
        self.name = f"batch({count}@{slot})"

    def arrivals_for_slot(self, slot: int) -> int:
        return self._count if slot == self._slot else 0

    def exhausted(self, slot: int) -> bool:
        return slot >= self._slot

    def precompile(self, horizon: int) -> np.ndarray:
        arrivals = np.zeros(horizon + 1, dtype=np.int64)
        if self._slot <= horizon:
            arrivals[self._slot] = self._count
        return arrivals

    def spec_params(self) -> dict:
        return {"count": self._count, "slot": self._slot}


class PoissonArrivals(ArrivalStrategy):
    """Independent Poisson arrivals with mean ``rate`` per slot.

    Statistical arrival pattern used by the classical backoff literature
    (Aldous 1987, Hastad et al. 1987).  Optionally stops injecting after
    ``last_slot`` so that the tail of the run can drain.
    """

    name = "poisson"
    spec_kind = "poisson"
    transient_rng = True

    def __init__(self, rate: float, last_slot: Optional[int] = None) -> None:
        if rate < 0:
            raise ConfigurationError("rate must be non-negative")
        self._rate = rate
        self._last_slot = last_slot
        self._rng: Optional[np.random.Generator] = None
        self.name = f"poisson(rate={rate:g})"

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        self._rng = rng
        if self._last_slot is None and horizon is not None:
            self._last_slot = horizon

    def arrivals_for_slot(self, slot: int) -> int:
        if self._rng is None:
            raise ConfigurationError("PoissonArrivals used before setup()")
        if self._last_slot is not None and slot > self._last_slot:
            return 0
        return int(self._rng.poisson(self._rate))

    def exhausted(self, slot: int) -> bool:
        if self._rate == 0:
            return True
        return self._last_slot is not None and slot >= self._last_slot

    def precompile(self, horizon: int) -> np.ndarray:
        if self._rng is None:
            raise ConfigurationError("PoissonArrivals used before setup()")
        last = horizon if self._last_slot is None else min(self._last_slot, horizon)
        arrivals = np.zeros(horizon + 1, dtype=np.int64)
        if last >= 1:
            # A batched draw consumes the generator exactly like `last`
            # sequential per-slot draws, keeping replay bit-identical.
            arrivals[1 : last + 1] = self._rng.poisson(self._rate, size=last)
        # transient_rng contract: the generator may be pooled and reseeded
        # for another trial after precompilation — drop it so a stray
        # arrivals_for_slot() call fails loudly.
        self._rng = None
        return arrivals

    def spec_params(self) -> dict:
        return {"rate": self._rate, "last_slot": self._last_slot}


class UniformRandomArrivals(ArrivalStrategy):
    """Scatter a fixed total number of arrivals uniformly at random over a window."""

    name = "uniform-random"
    spec_kind = "uniform-random"
    transient_rng = True

    def __init__(self, total: int, window: Tuple[int, int]) -> None:
        low, high = window
        if total < 0:
            raise ConfigurationError("total must be non-negative")
        if low < 1 or high < low:
            raise ConfigurationError("window must satisfy 1 <= low <= high")
        self._total = total
        self._window = (low, high)
        self._per_slot: Dict[int, int] = {}
        self.name = f"uniform({total} in [{low},{high}])"

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        low, high = self._window
        slots = rng.integers(low, high + 1, size=self._total)
        per_slot: Dict[int, int] = {}
        for slot in slots:
            per_slot[int(slot)] = per_slot.get(int(slot), 0) + 1
        self._per_slot = per_slot

    def arrivals_for_slot(self, slot: int) -> int:
        return self._per_slot.get(slot, 0)

    def exhausted(self, slot: int) -> bool:
        return slot >= self._window[1]

    def precompile(self, horizon: int) -> np.ndarray:
        return _schedule_to_array(self._per_slot, horizon)

    def spec_params(self) -> dict:
        return {
            "total": self._total,
            "start": self._window[0],
            "end": self._window[1],
        }


class BurstyArrivals(ArrivalStrategy):
    """Alternating quiet periods and bursts (Ethernet-like traffic).

    Every ``period`` slots a burst of ``burst_size`` nodes arrives, optionally
    with geometric jitter on the burst position inside the period.
    """

    name = "bursty"
    spec_kind = "bursty"
    transient_rng = True

    def __init__(
        self,
        burst_size: int,
        period: int,
        jitter: bool = True,
        first_burst_slot: int = 1,
        last_slot: Optional[int] = None,
    ) -> None:
        if burst_size < 0:
            raise ConfigurationError("burst_size must be non-negative")
        if period < 1:
            raise ConfigurationError("period must be >= 1")
        self._burst_size = burst_size
        self._period = period
        self._jitter = jitter
        self._first = first_burst_slot
        self._last_slot = last_slot
        self._burst_slots: Dict[int, int] = {}
        self.name = f"bursty({burst_size}/{period})"

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        end = self._last_slot or horizon or (self._first + 100 * self._period)
        self._burst_slots = {}
        slot = self._first
        while slot <= end:
            offset = int(rng.integers(0, self._period)) if self._jitter else 0
            burst_at = min(end, slot + offset)
            self._burst_slots[burst_at] = (
                self._burst_slots.get(burst_at, 0) + self._burst_size
            )
            slot += self._period

    def arrivals_for_slot(self, slot: int) -> int:
        return self._burst_slots.get(slot, 0)

    def exhausted(self, slot: int) -> bool:
        # Only meaningful after setup() materialized the burst plan.
        return bool(self._burst_slots) and slot >= max(self._burst_slots)

    def precompile(self, horizon: int) -> np.ndarray:
        return _schedule_to_array(self._burst_slots, horizon)

    def spec_params(self) -> dict:
        return {
            "burst_size": self._burst_size,
            "period": self._period,
            "jitter": self._jitter,
            "first_burst_slot": self._first,
            "last_slot": self._last_slot,
        }


class ScheduledArrivals(ArrivalStrategy):
    """Replay an explicit mapping from slot index to arrival count."""

    name = "scheduled"
    spec_kind = "scheduled"
    transient_rng = True
    consumes_rng = False

    def __init__(self, schedule: Mapping[int, int] | Iterable[Tuple[int, int]]) -> None:
        items = schedule.items() if isinstance(schedule, Mapping) else schedule
        self._schedule: Dict[int, int] = {}
        for slot, count in items:
            if slot < 1:
                raise ConfigurationError("scheduled slots must be >= 1")
            if count < 0:
                raise ConfigurationError("scheduled counts must be non-negative")
            self._schedule[int(slot)] = self._schedule.get(int(slot), 0) + int(count)

    def arrivals_for_slot(self, slot: int) -> int:
        return self._schedule.get(slot, 0)

    @property
    def total_arrivals(self) -> int:
        return sum(self._schedule.values())

    def exhausted(self, slot: int) -> bool:
        return not self._schedule or slot >= max(self._schedule)

    def precompile(self, horizon: int) -> np.ndarray:
        return _schedule_to_array(self._schedule, horizon)

    def observe(self, observation: SlotObservation) -> None:  # pragma: no cover - oblivious
        return None

    def spec_params(self) -> dict:
        return {
            "schedule": [[slot, count] for slot, count in sorted(self._schedule.items())]
        }


def _schedule_to_array(schedule: Mapping[int, int], horizon: int) -> np.ndarray:
    """Turn a slot -> count mapping into a dense per-slot array (index 0 unused)."""
    arrivals = np.zeros(horizon + 1, dtype=np.int64)
    for slot, count in schedule.items():
        if 1 <= slot <= horizon:
            arrivals[slot] = count
    return arrivals
