"""Columnar adversary drivers for the lockstep study kernel.

The lockstep kernel advances all ``T`` trials of a study one slot at a time,
so it needs every trial's adversary decision per slot.  A *driver* supplies
those decisions as ``(T,)`` arrays:

* :class:`PrecompiledLockstepDriver` — oblivious adversaries whose whole
  schedules were materialized up front (no per-slot work at all);
* :class:`ReactiveJammingLockstepDriver` — oblivious arrivals composed with
  :class:`~repro.adversary.jamming.ReactiveJamming`; the jammer's counters
  (slots seen, pending burst, budget spent) become int columns over trials
  and every trial's ``jam_slot`` evaluates in one vectorized expression;
* :class:`AdaptiveChaserLockstepDriver` — the fully adaptive
  :class:`~repro.adversary.adaptive.AdaptiveSuccessChaser`, likewise
  vectorized over trials;
* :class:`GenericLockstepDriver` — any other adversary, driven through the
  per-instance Python API one trial at a time (correct for everything,
  O(T) Python calls per slot).

All drivers replicate the reference loop's calling convention: decisions are
produced only for still-running trials (a drained trial's adversary is never
stepped again) and observations are delivered after each slot's resolution,
exactly as :meth:`~repro.adversary.base.Adversary.observe` receives them.
None of the columnar adversaries consume randomness after ``setup``, so the
vectorized replay is trivially stream-identical.
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

from ..types import Feedback, SlotObservation
from .adaptive import AdaptiveSuccessChaser
from .base import Adversary, ComposedAdversary
from .jamming import ReactiveJamming

__all__ = [
    "LockstepAdversaryDriver",
    "PrecompiledLockstepDriver",
    "ReactiveJammingLockstepDriver",
    "AdaptiveChaserLockstepDriver",
    "GenericLockstepDriver",
]


class LockstepAdversaryDriver(abc.ABC):
    """Per-slot adversary decisions for all trials of a lockstep study."""

    def __init__(self, adversaries: List[Adversary]) -> None:
        self.adversaries = adversaries
        self.trials = len(adversaries)

    #: Whole-horizon ``(T, horizon+1)`` arrival schedule when known up front
    #: (lets the kernel size its node columns exactly); ``None`` otherwise.
    arrival_schedule: Optional[np.ndarray] = None

    @abc.abstractmethod
    def actions(
        self, slot: int, trial_active: np.ndarray
    ) -> tuple:
        """``(arrivals, jam)`` arrays for ``slot``; zeros for stopped trials."""

    def observe(
        self,
        slot: int,
        success: np.ndarray,
        winner_ids: np.ndarray,
        trial_active: np.ndarray,
    ) -> None:
        """Deliver the slot's feedback to every still-running trial."""

    def exhausted(self, trial: int, slot: int) -> bool:
        """Whether trial ``trial``'s adversary can inject no more nodes."""
        return self.adversaries[trial].arrivals_exhausted(slot)

    def describe(self, trial: int) -> str:
        return self.adversaries[trial].describe()


class PrecompiledLockstepDriver(LockstepAdversaryDriver):
    """Oblivious adversaries: schedules fully materialized before slot 1."""

    def __init__(
        self,
        adversaries: List[Adversary],
        arrivals: np.ndarray,
        jammed: np.ndarray,
    ) -> None:
        super().__init__(adversaries)
        self.arrival_schedule = arrivals
        self._jammed = jammed

    def actions(self, slot: int, trial_active: np.ndarray) -> tuple:
        arrivals = np.where(trial_active, self.arrival_schedule[:, slot], 0)
        jam = self._jammed[:, slot] & trial_active
        return arrivals, jam


class ReactiveJammingLockstepDriver(LockstepAdversaryDriver):
    """Oblivious arrivals + reactive jamming, with the jammer's state columnar."""

    def __init__(
        self,
        adversaries: List[Adversary],
        arrivals: np.ndarray,
        fractions: np.ndarray,
        bursts: np.ndarray,
    ) -> None:
        super().__init__(adversaries)
        self.arrival_schedule = arrivals
        self._fraction = fractions
        self._burst = bursts
        self._seen = np.zeros(self.trials, dtype=np.int64)
        self._pending = np.zeros(self.trials, dtype=np.int64)
        self._jammed_so_far = np.zeros(self.trials, dtype=np.int64)

    @classmethod
    def try_build(
        cls, adversaries: List[Adversary], horizon: int
    ) -> Optional["ReactiveJammingLockstepDriver"]:
        """Build when every trial is (oblivious arrivals) + ReactiveJamming.

        Must be called after every adversary's ``setup``; precompiling the
        arrival strategies here consumes their generators exactly as the
        per-slot reference calls would.  All trials are type-checked before
        the first ``precompile``, but a strategy that still bails mid-way
        leaves earlier trials' strategies consumed — the caller must then
        rebuild the adversaries before falling back to a per-slot driver
        (see the ``None``-return contract).
        """
        specs = []
        for adversary in adversaries:
            if type(adversary) is not ComposedAdversary:
                return None
            if adversary.arrivals.adaptive:
                return None
            if type(adversary.jamming) is not ReactiveJamming:
                return None
            specs.append(adversary.jamming.spec_params())
        arrivals = np.zeros((len(adversaries), horizon + 1), dtype=np.int64)
        for index, adversary in enumerate(adversaries):
            schedule = adversary.arrivals.precompile(horizon)
            if schedule is None:
                return None
            arrivals[index] = schedule
        fractions = np.array([spec["fraction"] for spec in specs], dtype=float)
        bursts = np.array([spec["burst"] for spec in specs], dtype=np.int64)
        return cls(adversaries, arrivals, fractions, bursts)

    def actions(self, slot: int, trial_active: np.ndarray) -> tuple:
        arrivals = np.where(trial_active, self.arrival_schedule[:, slot], 0)
        # jam_slot, vectorized over the running trials: count the slot,
        # then jam while a burst is pending and the budget allows.
        self._seen += trial_active
        budget = np.floor(self._fraction * self._seen).astype(np.int64)
        jam = trial_active & (self._pending > 0) & (self._jammed_so_far < budget)
        self._pending -= jam
        self._jammed_so_far += jam
        return arrivals, jam

    def observe(self, slot, success, winner_ids, trial_active) -> None:
        refresh = success & trial_active
        self._pending[refresh] = self._burst[refresh]


class AdaptiveChaserLockstepDriver(LockstepAdversaryDriver):
    """:class:`AdaptiveSuccessChaser` with its counters as trial columns."""

    def __init__(self, adversaries: List[Adversary]) -> None:
        super().__init__(adversaries)
        specs = [adversary.spec_params() for adversary in adversaries]
        self._jam_fraction = np.array(
            [spec["jam_fraction"] for spec in specs], dtype=float
        )
        self._per_success = np.array(
            [spec["arrival_budget_per_success"] for spec in specs], dtype=np.int64
        )
        budgets = [spec["total_arrival_budget"] for spec in specs]
        self._unbounded = np.array([b is None for b in budgets], dtype=bool)
        self._total_budget = np.array(
            [0 if b is None else b for b in budgets], dtype=np.int64
        )
        self._jam_burst = np.array([spec["jam_burst"] for spec in specs], np.int64)
        self._seed_arrivals = np.array(
            [spec["seed_arrivals"] for spec in specs], dtype=np.int64
        )
        self._pending_arrivals = np.zeros(self.trials, dtype=np.int64)
        self._pending_jam = np.zeros(self.trials, dtype=np.int64)
        self._injected = np.zeros(self.trials, dtype=np.int64)
        self._jammed = np.zeros(self.trials, dtype=np.int64)
        self._slots = np.zeros(self.trials, dtype=np.int64)

    @classmethod
    def try_build(
        cls, adversaries: List[Adversary], horizon: int
    ) -> Optional["AdaptiveChaserLockstepDriver"]:
        if any(type(a) is not AdaptiveSuccessChaser for a in adversaries):
            return None
        return cls(adversaries)

    def actions(self, slot: int, trial_active: np.ndarray) -> tuple:
        self._slots += trial_active
        arrivals = self._pending_arrivals + (
            self._seed_arrivals if slot == 1 else 0
        )
        arrivals = np.where(trial_active, arrivals, 0)
        remaining = np.maximum(0, self._total_budget - self._injected)
        arrivals = np.where(
            self._unbounded, arrivals, np.minimum(arrivals, remaining)
        )
        self._pending_arrivals[trial_active] = 0
        self._injected += arrivals
        jam_budget = np.floor(self._jam_fraction * self._slots).astype(np.int64)
        jam = trial_active & (self._pending_jam > 0) & (self._jammed < jam_budget)
        self._pending_jam -= jam
        self._jammed += jam
        return arrivals, jam

    def observe(self, slot, success, winner_ids, trial_active) -> None:
        chased = success & trial_active
        self._pending_arrivals[chased] += self._per_success[chased]
        self._pending_jam[chased] = self._jam_burst[chased]

    def exhausted(self, trial: int, slot: int) -> bool:
        return bool(
            not self._unbounded[trial]
            and self._injected[trial] >= self._total_budget[trial]
            and self._pending_arrivals[trial] == 0
        )


class GenericLockstepDriver(LockstepAdversaryDriver):
    """Fallback: drive each trial's adversary through the per-instance API."""

    def actions(self, slot: int, trial_active: np.ndarray) -> tuple:
        arrivals = np.zeros(self.trials, dtype=np.int64)
        jam = np.zeros(self.trials, dtype=bool)
        for trial in np.nonzero(trial_active)[0]:
            action = self.adversaries[int(trial)].action_for_slot(slot)
            arrivals[trial] = action.arrivals
            jam[trial] = action.jam
        return arrivals, jam

    def observe(self, slot, success, winner_ids, trial_active) -> None:
        for trial in np.nonzero(trial_active)[0]:
            trial = int(trial)
            won = bool(success[trial])
            observation = SlotObservation(
                slot=slot,
                feedback=Feedback.SUCCESS if won else Feedback.NO_SUCCESS,
                message_node=int(winner_ids[trial]) if won else None,
            )
            self.adversaries[trial].observe(observation)
