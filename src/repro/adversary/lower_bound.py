"""Adversary strategies from the paper's impossibility proofs.

Two strategies are provided:

* :class:`LowerBoundAdversary` — the strategy of Lemma 4.1 / Theorem 1.3: it
  injects one node in the first slot, jams the first ``t/(4 g(t))`` slots plus
  the last slot, and jams another ``t/(4 g(t))`` slots chosen uniformly at
  random from the remainder of the horizon.  Against protocols whose sending
  probability decays too fast (because they over-reacted to the front-loaded
  jamming) this delays the first success far beyond what the optimal trade-off
  allows.

* :class:`NonAdaptiveKillerAdversary` — the strategy of Theorem 4.2 against
  protocols with a *pre-defined* sending-probability sequence: jam the first
  ``t/(4 g(t))`` slots and the last slot, inject two nodes in the first slot
  and a crowd of ``t/(4 f(t))`` nodes in the last slot.
"""

from __future__ import annotations

import math
from typing import Optional, Set

import numpy as np

from ..errors import ConfigurationError
from ..functions import RateFunction
from ..types import AdversaryAction
from .base import Adversary

__all__ = ["LowerBoundAdversary", "NonAdaptiveKillerAdversary"]


class LowerBoundAdversary(Adversary):
    """Adversary of Lemma 4.1 / Theorem 1.3 (front-loaded + random jamming)."""

    name = "lower-bound"
    spec_kind = "lower-bound"
    precompilable = True  # all randomness is realized in setup()

    def __init__(
        self,
        horizon: int,
        g: RateFunction,
        initial_nodes: int = 1,
        jam_constant: float = 4.0,
    ) -> None:
        if horizon < 4:
            raise ConfigurationError("horizon must be at least 4")
        if initial_nodes < 1:
            raise ConfigurationError("initial_nodes must be >= 1")
        if jam_constant <= 0:
            raise ConfigurationError("jam_constant must be positive")
        self._horizon = horizon
        self._g = g
        self._initial_nodes = initial_nodes
        self._jam_constant = jam_constant
        self._front_jam = 0
        self._random_jam: Set[int] = set()
        self.name = f"lower-bound(g={g.name})"

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        t = self._horizon
        budget = max(1, int(t / (self._jam_constant * self._g(float(t)))))
        self._front_jam = min(budget, t - 1)
        tail_slots = np.arange(self._front_jam + 1, t + 1)
        extra = min(budget, len(tail_slots))
        if extra > 0:
            chosen = rng.choice(tail_slots, size=extra, replace=False)
            self._random_jam = {int(s) for s in chosen}
        else:
            self._random_jam = set()
        self._random_jam.add(t)

    @property
    def total_jam_budget(self) -> int:
        return self._front_jam + len(self._random_jam)

    def action_for_slot(self, slot: int) -> AdversaryAction:
        arrivals = self._initial_nodes if slot == 1 else 0
        jam = slot <= self._front_jam or slot in self._random_jam
        return AdversaryAction(arrivals=arrivals, jam=jam)

    def arrivals_exhausted(self, slot: int) -> bool:
        return True  # all arrivals happen in slot 1

    def spec_params(self) -> dict:
        from ..spec.rates import rate_function_to_spec

        # ``horizon`` is intentionally absent: adversary specs are
        # horizon-free, the study supplies it at build time.
        return {
            "g": rate_function_to_spec(self._g),
            "initial_nodes": self._initial_nodes,
            "jam_constant": self._jam_constant,
        }


class NonAdaptiveKillerAdversary(Adversary):
    """Adversary of Theorem 4.2 against fixed-probability (non-adaptive) protocols."""

    name = "non-adaptive-killer"
    spec_kind = "non-adaptive-killer"
    precompilable = True  # all randomness is realized in setup()

    def __init__(
        self,
        horizon: int,
        g: RateFunction,
        f: RateFunction,
        jam_constant: float = 4.0,
        arrival_constant: float = 4.0,
    ) -> None:
        if horizon < 4:
            raise ConfigurationError("horizon must be at least 4")
        self._horizon = horizon
        self._g = g
        self._f = f
        self._jam_constant = jam_constant
        self._arrival_constant = arrival_constant
        self._front_jam = 0
        self._late_arrivals = 0
        self.name = f"non-adaptive-killer(g={g.name})"

    def setup(self, rng: np.random.Generator, horizon: Optional[int] = None) -> None:
        t = self._horizon
        self._front_jam = max(
            1, min(t - 1, int(t / (self._jam_constant * self._g(float(t)))))
        )
        self._late_arrivals = max(
            1, int(t / (self._arrival_constant * self._f(float(t))))
        )

    @property
    def front_jam_slots(self) -> int:
        return self._front_jam

    @property
    def late_arrivals(self) -> int:
        return self._late_arrivals

    def action_for_slot(self, slot: int) -> AdversaryAction:
        arrivals = 0
        if slot == 1:
            arrivals = 2
        elif slot == self._horizon:
            arrivals = self._late_arrivals
        jam = slot <= self._front_jam or slot == self._horizon
        return AdversaryAction(arrivals=arrivals, jam=jam)

    def arrivals_exhausted(self, slot: int) -> bool:
        return slot >= self._horizon

    @staticmethod
    def expected_contention_bound(horizon: int, g_value: float) -> float:
        """Helper used by tests: size of the jammed prefix for a given g(t)."""
        return math.floor(horizon / (4.0 * g_value))

    def spec_params(self) -> dict:
        from ..spec.rates import rate_function_to_spec

        # ``horizon`` is intentionally absent (as in LowerBoundAdversary):
        # adversary specs are horizon-free, the study supplies it at build.
        return {
            "g": rate_function_to_spec(self._g),
            "f": rate_function_to_spec(self._f),
            "jam_constant": self._jam_constant,
            "arrival_constant": self._arrival_constant,
        }
