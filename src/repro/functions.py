"""Function families used by the paper's algorithm and analysis.

The algorithm of Chen, Jiang and Zheng is parameterized by a jamming budget
function ``g`` with ``log g(x) = O(sqrt(log x))``.  From ``g`` it derives the
arrival budget function ``f(x) = Θ(log x / log² g(x))`` and two sending-rate
functions:

* ``h_ctrl(x) = c3 · log(x) / x`` — used by the control-channel ``batch``,
* ``h_data(x) = 1 / x``          — used by the data-channel ``batch``.

This module provides:

* :class:`RateFunction` — a named, positive, callable wrapper with sanity
  checks, used everywhere a function of slot counts is required;
* constructors for the standard ``g`` families appearing in the paper
  (constant, ``log x``, ``polylog``, ``2^sqrt(log x)``);
* :func:`derive_f` implementing the paper's ``f`` from ``g``;
* :func:`is_sub_logarithmic` — an empirical check of the paper's
  "sub-logarithmic" conditions (Remark 1) on a sampled range, used by tests
  and by experiment configuration validation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

import numpy as np

from .errors import ConfigurationError

__all__ = [
    "RateFunction",
    "constant_g",
    "log_g",
    "polylog_g",
    "exp_sqrt_log_g",
    "derive_f",
    "h_ctrl",
    "h_data",
    "backoff_budget",
    "is_sub_logarithmic",
    "GFamily",
    "STANDARD_G_FAMILIES",
]


@dataclass(frozen=True)
class RateFunction:
    """A positive real function of a positive real argument, with a name.

    Instances are lightweight callables; the name is carried along so that
    experiment reports can label sweeps (e.g. ``g(x) = log x``).

    ``spec`` holds the JSON-serializable description of the function when it
    was built by one of the standard family constructors below (``{"kind":
    ..., "params": {...}}``).  It is what lets protocol and adversary specs
    that embed a rate function round-trip through JSON; hand-rolled
    ``RateFunction`` instances leave it ``None`` and are simply not
    serializable.
    """

    name: str
    func: Callable[[float], float]
    spec: Optional[Mapping[str, Any]] = field(default=None, compare=False)

    def __call__(self, x: float) -> float:
        if x <= 0:
            raise ConfigurationError(
                f"rate function {self.name!r} evaluated at non-positive x={x}"
            )
        value = float(self.func(x))
        if not math.isfinite(value) or value <= 0:
            raise ConfigurationError(
                f"rate function {self.name!r} produced invalid value {value} at x={x}"
            )
        return value

    def values(self, xs: "np.ndarray") -> "np.ndarray":
        """Evaluate the function over an array of arguments.

        Tries one whole-array call first (constant and numpy-compatible
        functions broadcast for free) and falls back to element-wise
        evaluation when the wrapped callable only accepts scalars — the
        common case for ``math``-based lambdas.  A sample element of the
        array result is cross-checked against the scalar path so a callable
        that silently mis-broadcasts can never corrupt a columnar metric.
        """
        xs = np.asarray(xs, dtype=float)
        if xs.size == 0:
            return np.zeros(0, dtype=float)
        if float(xs.min()) <= 0:
            raise ConfigurationError(
                f"rate function {self.name!r} evaluated at non-positive "
                f"x={float(xs.min())}"
            )
        values: Optional[np.ndarray] = None
        try:
            candidate = np.asarray(self.func(xs), dtype=float)
        except Exception:
            candidate = None
        if candidate is not None:
            if candidate.ndim == 0:
                candidate = np.full(xs.shape, float(candidate))
            if candidate.shape == xs.shape and math.isclose(
                float(candidate[0]), self(float(xs[0])), rel_tol=1e-12
            ):
                values = candidate
        if values is None:
            values = np.fromiter(
                (self(float(x)) for x in xs), dtype=float, count=xs.size
            )
            return values  # each element already validated by __call__
        bad = ~(np.isfinite(values) & (values > 0))
        if bad.any():
            index = int(np.argmax(bad))
            raise ConfigurationError(
                f"rate function {self.name!r} produced invalid value "
                f"{values[index]} at x={xs[index]}"
            )
        return values

    def __reduce__(self):
        # Standard-family instances pickle via their construction recipe
        # (the wrapped lambda itself cannot cross a process boundary), which
        # is what lets reducers holding rate functions travel back from
        # worker shards.  Hand-rolled instances fall back to the default
        # protocol and fail at pickle time with the usual lambda error.
        if self.spec is not None:
            from .spec.rates import rate_function_from_spec

            return (rate_function_from_spec, (dict(self.spec),))
        return super().__reduce__()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RateFunction({self.name})"


def constant_g(value: float = 4.0) -> RateFunction:
    """Constant jamming budget: the adversary may jam a constant fraction of slots."""
    if value <= 1:
        raise ConfigurationError("constant g must exceed 1")
    return RateFunction(
        f"g(x)={value:g}",
        lambda x: value,
        spec={"kind": "constant", "params": {"value": value}},
    )


def log_g(base: float = 2.0, floor: float = 2.0) -> RateFunction:
    """``g(x) = max(floor, log_base x)`` — the adversary may jam a 1/log x fraction."""
    if base <= 1:
        raise ConfigurationError("log base must exceed 1")
    return RateFunction(
        f"g(x)=log_{base:g}(x)",
        lambda x: max(floor, math.log(x, base)),
        spec={"kind": "log", "params": {"base": base, "floor": floor}},
    )


def polylog_g(power: float = 2.0, floor: float = 2.0) -> RateFunction:
    """``g(x) = max(floor, (log₂ x)^power)``."""
    if power <= 0:
        raise ConfigurationError("polylog power must be positive")
    return RateFunction(
        f"g(x)=log^{power:g}(x)",
        lambda x: max(floor, math.log2(max(x, 2.0)) ** power),
        spec={"kind": "polylog", "params": {"power": power, "floor": floor}},
    )


def exp_sqrt_log_g(scale: float = 1.0, floor: float = 2.0) -> RateFunction:
    """``g(x) = max(floor, 2^(scale·sqrt(log₂ x)))`` — the largest admissible family.

    With this choice ``f`` becomes a constant function (Remark 2): the
    algorithm achieves constant throughput while tolerating ``t / 2^Θ(sqrt(log t))``
    jammed slots.
    """
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    return RateFunction(
        f"g(x)=2^({scale:g}*sqrt(log2 x))",
        lambda x: max(floor, 2.0 ** (scale * math.sqrt(math.log2(max(x, 2.0))))),
        spec={"kind": "exp-sqrt-log", "params": {"scale": scale, "floor": floor}},
    )


def derive_f(g: RateFunction, a: float = 1.0, c2: float = 1.0, floor: float = 1.0) -> RateFunction:
    """Derive ``f(x) = a·c2·log(x) / log²(g(x)/a)`` from the jamming budget ``g``.

    This is the function of Theorem 1.2; constants ``a`` and ``c2`` correspond
    to the paper's (unspecified) constants.  A floor keeps the function usable
    at small ``x`` where the asymptotic expression degenerates.
    """
    if a <= 0 or c2 <= 0:
        raise ConfigurationError("constants a and c2 must be positive")

    def _f(x: float) -> float:
        gx = max(g(x) / a, 2.0)
        value = a * c2 * math.log2(max(x, 2.0)) / (math.log2(gx) ** 2)
        return max(floor, value)

    spec = None
    if g.spec is not None:
        spec = {
            "kind": "derived-f",
            "params": {"g": dict(g.spec), "a": a, "c2": c2, "floor": floor},
        }
    return RateFunction(f"f from {g.name}", _f, spec=spec)


def h_ctrl(c3: float = 4.0) -> RateFunction:
    """Control-channel batch rate ``h_ctrl(x) = c3 · log₂(x) / x`` (capped at 1)."""
    if c3 <= 0:
        raise ConfigurationError("c3 must be positive")
    return RateFunction(
        f"h_ctrl(x)={c3:g}*log(x)/x",
        lambda x: min(1.0, c3 * math.log2(max(x, 2.0)) / x),
    )


def h_data() -> RateFunction:
    """Data-channel batch rate ``h_data(x) = 1 / x``."""
    return RateFunction("h_data(x)=1/x", lambda x: min(1.0, 1.0 / x))


def backoff_budget(f: RateFunction, scale: float = 1.0) -> Callable[[int], int]:
    """Turn the budget function ``f`` into the per-stage send count used by ``h-backoff``.

    A node running ``(f/a)-backoff`` sends ``ceil(scale · f(stage_length))``
    times per stage, each in a uniformly random slot of the stage.
    """

    def _budget(stage_length: int) -> int:
        if stage_length <= 0:
            raise ConfigurationError("stage length must be positive")
        return max(1, math.ceil(scale * f(float(stage_length))))

    return _budget


def is_sub_logarithmic(
    func: RateFunction,
    xs: Sequence[float] = (2.0**10, 2.0**14, 2.0**18, 2.0**22, 2.0**26),
    ratio_constant: float = 8.0,
    tolerance: float = 0.35,
) -> bool:
    """Empirically check the paper's sub-logarithmic conditions (Remark 1).

    The check samples the function on ``xs`` and verifies, approximately:

    1. ``func(x) = O(log x)`` and non-decreasing on the sample;
    2. ``func(c·x)`` differs from ``func(x)`` by a bounded additive amount;
    3. ``func(x^c) = Θ(func(x))`` up to the tolerance.

    This is a heuristic sanity check for configurations, not a proof.
    """
    values = [func(x) for x in xs]
    logs = [math.log2(x) for x in xs]
    # (1) O(log x) and non-decreasing (small decreases within tolerance allowed).
    for value, logx in zip(values, logs):
        if value > ratio_constant * logx:
            return False
    for earlier, later in zip(values, values[1:]):
        if later < earlier * (1.0 - tolerance):
            return False
    # (2) bounded additive change under constant multiplication of the argument.
    additive_bound = ratio_constant * (1.0 + max(values))
    for x in xs:
        if abs(func(4.0 * x) - func(x)) > additive_bound:
            return False
    # (3) Θ-stability under constant powers of the argument.
    for x in xs:
        ratio = func(x**1.5) / func(x)
        if ratio > ratio_constant or ratio < 1.0 / ratio_constant:
            return False
    return True


@dataclass(frozen=True)
class GFamily:
    """A named jamming-budget family paired with its derived arrival budget."""

    label: str
    g: RateFunction
    description: str

    def f(self, a: float = 1.0, c2: float = 1.0) -> RateFunction:
        return derive_f(self.g, a=a, c2=c2)


STANDARD_G_FAMILIES = (
    GFamily(
        label="constant",
        g=constant_g(4.0),
        description="constant-fraction jamming (worst case); best f is Θ(log t)",
    ),
    GFamily(
        label="log",
        g=log_g(),
        description="1/log t fraction of slots jammed; f is Θ(log t / log² log t)",
    ),
    GFamily(
        label="polylog",
        g=polylog_g(2.0),
        description="1/log² t fraction of slots jammed",
    ),
    GFamily(
        label="exp-sqrt-log",
        g=exp_sqrt_log_g(),
        description="2^Θ(sqrt(log t)) budget; f becomes constant (Remark 2)",
    ),
)
