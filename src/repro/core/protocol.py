"""The Chen–Jiang–Zheng three-phase contention-resolution protocol.

A node runs this algorithm from arrival until its message is delivered:

* **Phase 1 (SYNCHRONIZE).**  Arriving at slot ``l0``, the node runs
  ``(f/a)``-backoff on the virtual channel with the parity of ``l0`` until it
  hears a success in *any* slot ``l1`` (on either channel).  The node cannot
  simply listen, because it might be alone in the system.

* **Phase 2 (WAIT_CONTROL).**  Let ``α`` be the channel containing ``l1`` (the
  node's data channel).  The node runs ``(f/a)``-backoff on the other channel
  ``ᾱ`` starting from slot ``l1 + 1`` until it hears a success on ``ᾱ`` in
  some slot ``l2``.  That success synchronizes every node currently in Phase 2
  or Phase 3.

* **Phase 3 (BATCH).**  With anchor ``l3`` (initially ``l2``), the node runs
  ``h_ctrl``-batch on the channel with the parity of ``l3 + 1`` (the control
  channel) and ``h_data``-batch on the channel with the parity of ``l3 + 2``
  (the data channel).  When a success is heard on the control channel in slot
  ``l3'``, the node sets ``l3 = l3'`` and restarts Phase 3 — which, because
  the new anchor lies on the old control channel, automatically swaps the data
  and control roles.

A node halts as soon as its own message is transmitted (the simulator removes
it), so the protocol does not need an explicit "done" state.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..channel.virtual import VirtualChannelView
from ..protocols.base import Protocol, make_factory
from ..types import ChannelParity, Feedback
from .parameters import AlgorithmParameters
from .phases import Phase
from .subroutines import HBackoff, HBatch

__all__ = ["ChenJiangZhengProtocol", "GlobalClockVariant", "cjz_factory"]


class ChenJiangZhengProtocol(Protocol):
    """The paper's algorithm, parameterized by the jamming budget function ``g``."""

    name = "chen-jiang-zheng"
    spec_kind = "cjz"

    def __init__(self, parameters: Optional[AlgorithmParameters] = None) -> None:
        self._params = parameters or AlgorithmParameters.from_g()
        self._rng: Optional[np.random.Generator] = None
        self._phase = Phase.SYNCHRONIZE
        # Phase 1 state
        self._phase1_view: Optional[VirtualChannelView] = None
        self._phase1_backoff: Optional[HBackoff] = None
        # Phase 2 state
        self._phase2_view: Optional[VirtualChannelView] = None
        self._phase2_backoff: Optional[HBackoff] = None
        # Phase 3 state
        self._ctrl_view: Optional[VirtualChannelView] = None
        self._data_view: Optional[VirtualChannelView] = None
        self._ctrl_batch: Optional[HBatch] = None
        self._data_batch: Optional[HBatch] = None
        self._phase3_restarts = 0

    # ------------------------------------------------------------------ state

    @property
    def parameters(self) -> AlgorithmParameters:
        return self._params

    @property
    def phase(self) -> Phase:
        return self._phase

    @property
    def phase3_restarts(self) -> int:
        return self._phase3_restarts

    def spec_params(self) -> dict:
        return self._params.to_spec_params()

    @property
    def control_parity(self) -> Optional[ChannelParity]:
        """Parity of the node's current control channel (Phase 2 and 3 only)."""
        if self._phase is Phase.WAIT_CONTROL and self._phase2_view is not None:
            return self._phase2_view.parity
        if self._phase is Phase.BATCH and self._ctrl_view is not None:
            return self._ctrl_view.parity
        return None

    # --------------------------------------------------------------- protocol

    def on_arrival(self, slot: int, rng: np.random.Generator) -> None:
        self._rng = rng
        self._phase = Phase.SYNCHRONIZE
        self._phase1_view = VirtualChannelView(anchor_slot=slot, same_parity=True)
        self._phase1_backoff = HBackoff(self._params.backoff_budget, rng)

    def _start_phase2(self, success_slot: int) -> None:
        """Enter Phase 2 after hearing the first success (at ``success_slot``)."""
        assert self._rng is not None
        self._phase = Phase.WAIT_CONTROL
        # The success channel (parity of success_slot) becomes the data
        # channel; Phase 2's backoff runs on the opposite channel, which is
        # exactly the channel containing success_slot + 1.
        self._phase2_view = VirtualChannelView(
            anchor_slot=success_slot + 1, same_parity=True
        )
        self._phase2_backoff = HBackoff(self._params.backoff_budget, self._rng)

    def _start_phase3(self, anchor_slot: int) -> None:
        """(Re)start Phase 3 with anchor ``l3 = anchor_slot``."""
        assert self._rng is not None
        if self._phase is Phase.BATCH:
            self._phase3_restarts += 1
        self._phase = Phase.BATCH
        self._ctrl_view = VirtualChannelView(anchor_slot=anchor_slot + 1, same_parity=True)
        self._data_view = VirtualChannelView(anchor_slot=anchor_slot + 2, same_parity=True)
        self._ctrl_batch = HBatch(self._params.ctrl_probability, self._rng)
        self._data_batch = HBatch(self._params.data_probability, self._rng)

    def wants_to_broadcast(self, slot: int) -> bool:
        if self._phase is Phase.SYNCHRONIZE:
            assert self._phase1_view is not None and self._phase1_backoff is not None
            if self._phase1_view.contains(slot):
                return self._phase1_backoff.should_send(
                    self._phase1_view.local_index(slot)
                )
            return False
        if self._phase is Phase.WAIT_CONTROL:
            assert self._phase2_view is not None and self._phase2_backoff is not None
            if self._phase2_view.contains(slot):
                return self._phase2_backoff.should_send(
                    self._phase2_view.local_index(slot)
                )
            return False
        # Phase 3: both batches run concurrently, one per virtual channel.
        assert self._ctrl_view is not None and self._data_view is not None
        assert self._ctrl_batch is not None and self._data_batch is not None
        if self._ctrl_view.contains(slot):
            return self._ctrl_batch.should_send(self._ctrl_view.local_index(slot))
        if self._data_view.contains(slot):
            return self._data_batch.should_send(self._data_view.local_index(slot))
        return False

    def broadcast_probability(self, slot: int) -> Optional[float]:
        """Marginal sending probability in ``slot`` given the current phase.

        Computed from the subroutines' population-level rates (the a-priori
        stage marginal for ``h``-backoff, the rate function for ``h``-batch).
        The protocol remains feedback-adaptive, so it does **not** opt into
        the vectorized kernel; this hook feeds analysis and diagnostics.
        """
        if self._rng is None:
            return None
        if self._phase is Phase.SYNCHRONIZE:
            assert self._phase1_view is not None and self._phase1_backoff is not None
            if self._phase1_view.contains(slot):
                return self._phase1_backoff.marginal_probability(
                    self._phase1_view.local_index(slot)
                )
            return 0.0
        if self._phase is Phase.WAIT_CONTROL:
            assert self._phase2_view is not None and self._phase2_backoff is not None
            if self._phase2_view.contains(slot):
                return self._phase2_backoff.marginal_probability(
                    self._phase2_view.local_index(slot)
                )
            return 0.0
        assert self._ctrl_view is not None and self._data_view is not None
        assert self._ctrl_batch is not None and self._data_batch is not None
        if self._ctrl_view.contains(slot):
            return self._ctrl_batch.probability(self._ctrl_view.local_index(slot))
        if self._data_view.contains(slot):
            return self._data_batch.probability(self._data_view.local_index(slot))
        return 0.0

    def on_feedback(
        self, slot: int, feedback: Feedback, broadcast: bool, success_was_own: bool
    ) -> None:
        if success_was_own or feedback is not Feedback.SUCCESS:
            return
        if self._phase is Phase.SYNCHRONIZE:
            self._start_phase2(slot)
        elif self._phase is Phase.WAIT_CONTROL:
            assert self._phase2_view is not None
            if self._phase2_view.contains(slot):
                self._start_phase3(slot)
        else:  # Phase 3
            assert self._ctrl_view is not None
            if self._ctrl_view.contains(slot):
                self._start_phase3(slot)


class GlobalClockVariant(ChenJiangZhengProtocol):
    """Ablation: assume a global clock so channel roles never need negotiating.

    With a global clock the odd channel can simply be declared the control
    channel and the even channel the data channel, removing the need for
    Phase 1 (the role-agreement phase).  A node starts directly in Phase 2,
    running backoff on the (globally known) control channel.  Comparing this
    variant against the full protocol isolates the cost of reaching agreement
    on channel roles without a clock.
    """

    name = "cjz-global-clock"
    spec_kind = "cjz-global-clock"

    def on_arrival(self, slot: int, rng: np.random.Generator) -> None:
        super().on_arrival(slot, rng)
        # Jump straight to Phase 2 with the odd channel (global parity) as the
        # control channel: anchor the Phase-2 view at the next odd slot.
        next_odd = slot if slot % 2 == 1 else slot + 1
        self._phase = Phase.WAIT_CONTROL
        self._phase2_view = VirtualChannelView(anchor_slot=next_odd, same_parity=True)
        self._phase2_backoff = HBackoff(self._params.backoff_budget, rng)


def cjz_factory(
    parameters: Optional[AlgorithmParameters] = None,
    global_clock: bool = False,
):
    """Protocol factory for the simulator (fresh instance per arriving node)."""
    params = parameters or AlgorithmParameters.from_g()
    cls = GlobalClockVariant if global_clock else ChenJiangZhengProtocol
    return make_factory(cls, params)
