"""The Chen–Jiang–Zheng three-phase contention-resolution protocol.

A node runs this algorithm from arrival until its message is delivered:

* **Phase 1 (SYNCHRONIZE).**  Arriving at slot ``l0``, the node runs
  ``(f/a)``-backoff on the virtual channel with the parity of ``l0`` until it
  hears a success in *any* slot ``l1`` (on either channel).  The node cannot
  simply listen, because it might be alone in the system.

* **Phase 2 (WAIT_CONTROL).**  Let ``α`` be the channel containing ``l1`` (the
  node's data channel).  The node runs ``(f/a)``-backoff on the other channel
  ``ᾱ`` starting from slot ``l1 + 1`` until it hears a success on ``ᾱ`` in
  some slot ``l2``.  That success synchronizes every node currently in Phase 2
  or Phase 3.

* **Phase 3 (BATCH).**  With anchor ``l3`` (initially ``l2``), the node runs
  ``h_ctrl``-batch on the channel with the parity of ``l3 + 1`` (the control
  channel) and ``h_data``-batch on the channel with the parity of ``l3 + 2``
  (the data channel).  When a success is heard on the control channel in slot
  ``l3'``, the node sets ``l3 = l3'`` and restarts Phase 3 — which, because
  the new anchor lies on the old control channel, automatically swaps the data
  and control roles.

A node halts as soon as its own message is transmitted (the simulator removes
it), so the protocol does not need an explicit "done" state.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..channel.virtual import VirtualChannelView
from ..protocols.base import (
    LOCKSTEP_SENTINEL,
    OP_CJZ,
    CompiledProgramTables,
    LockstepProgram,
    Protocol,
    grow_flat_column,
    make_factory,
)
from ..types import ChannelParity, Feedback
from .parameters import AlgorithmParameters
from .phases import Phase
from .subroutines import HBackoff, HBatch

__all__ = [
    "CJZLockstepProgram",
    "ChenJiangZhengProtocol",
    "GlobalClockVariant",
    "cjz_factory",
]


class ChenJiangZhengProtocol(Protocol):
    """The paper's algorithm, parameterized by the jamming budget function ``g``."""

    name = "chen-jiang-zheng"
    spec_kind = "cjz"

    def __init__(self, parameters: Optional[AlgorithmParameters] = None) -> None:
        self._params = parameters or AlgorithmParameters.from_g()
        self._rng: Optional[np.random.Generator] = None
        self._phase = Phase.SYNCHRONIZE
        # Phase 1 state
        self._phase1_view: Optional[VirtualChannelView] = None
        self._phase1_backoff: Optional[HBackoff] = None
        # Phase 2 state
        self._phase2_view: Optional[VirtualChannelView] = None
        self._phase2_backoff: Optional[HBackoff] = None
        # Phase 3 state
        self._ctrl_view: Optional[VirtualChannelView] = None
        self._data_view: Optional[VirtualChannelView] = None
        self._ctrl_batch: Optional[HBatch] = None
        self._data_batch: Optional[HBatch] = None
        self._phase3_restarts = 0

    # ------------------------------------------------------------------ state

    @property
    def parameters(self) -> AlgorithmParameters:
        return self._params

    @property
    def phase(self) -> Phase:
        return self._phase

    @property
    def phase3_restarts(self) -> int:
        return self._phase3_restarts

    def spec_params(self) -> dict:
        return self._params.to_spec_params()

    @property
    def control_parity(self) -> Optional[ChannelParity]:
        """Parity of the node's current control channel (Phase 2 and 3 only)."""
        if self._phase is Phase.WAIT_CONTROL and self._phase2_view is not None:
            return self._phase2_view.parity
        if self._phase is Phase.BATCH and self._ctrl_view is not None:
            return self._ctrl_view.parity
        return None

    # --------------------------------------------------------------- protocol

    def on_arrival(self, slot: int, rng: np.random.Generator) -> None:
        self._rng = rng
        self._phase = Phase.SYNCHRONIZE
        self._phase1_view = VirtualChannelView(anchor_slot=slot, same_parity=True)
        self._phase1_backoff = HBackoff(self._params.backoff_budget, rng)

    def _start_phase2(self, success_slot: int) -> None:
        """Enter Phase 2 after hearing the first success (at ``success_slot``)."""
        assert self._rng is not None
        self._phase = Phase.WAIT_CONTROL
        # The success channel (parity of success_slot) becomes the data
        # channel; Phase 2's backoff runs on the opposite channel, which is
        # exactly the channel containing success_slot + 1.
        self._phase2_view = VirtualChannelView(
            anchor_slot=success_slot + 1, same_parity=True
        )
        self._phase2_backoff = HBackoff(self._params.backoff_budget, self._rng)

    def _start_phase3(self, anchor_slot: int) -> None:
        """(Re)start Phase 3 with anchor ``l3 = anchor_slot``."""
        assert self._rng is not None
        if self._phase is Phase.BATCH:
            self._phase3_restarts += 1
        self._phase = Phase.BATCH
        self._ctrl_view = VirtualChannelView(anchor_slot=anchor_slot + 1, same_parity=True)
        self._data_view = VirtualChannelView(anchor_slot=anchor_slot + 2, same_parity=True)
        self._ctrl_batch = HBatch(self._params.ctrl_probability, self._rng)
        self._data_batch = HBatch(self._params.data_probability, self._rng)

    def wants_to_broadcast(self, slot: int) -> bool:
        if self._phase is Phase.SYNCHRONIZE:
            assert self._phase1_view is not None and self._phase1_backoff is not None
            if self._phase1_view.contains(slot):
                return self._phase1_backoff.should_send(
                    self._phase1_view.local_index(slot)
                )
            return False
        if self._phase is Phase.WAIT_CONTROL:
            assert self._phase2_view is not None and self._phase2_backoff is not None
            if self._phase2_view.contains(slot):
                return self._phase2_backoff.should_send(
                    self._phase2_view.local_index(slot)
                )
            return False
        # Phase 3: both batches run concurrently, one per virtual channel.
        assert self._ctrl_view is not None and self._data_view is not None
        assert self._ctrl_batch is not None and self._data_batch is not None
        if self._ctrl_view.contains(slot):
            return self._ctrl_batch.should_send(self._ctrl_view.local_index(slot))
        if self._data_view.contains(slot):
            return self._data_batch.should_send(self._data_view.local_index(slot))
        return False

    def broadcast_probability(self, slot: int) -> Optional[float]:
        """Marginal sending probability in ``slot`` given the current phase.

        Computed from the subroutines' population-level rates (the a-priori
        stage marginal for ``h``-backoff, the rate function for ``h``-batch).
        The protocol remains feedback-adaptive, so it does **not** opt into
        the vectorized kernel; this hook feeds analysis and diagnostics.
        """
        if self._rng is None:
            return None
        if self._phase is Phase.SYNCHRONIZE:
            assert self._phase1_view is not None and self._phase1_backoff is not None
            if self._phase1_view.contains(slot):
                return self._phase1_backoff.marginal_probability(
                    self._phase1_view.local_index(slot)
                )
            return 0.0
        if self._phase is Phase.WAIT_CONTROL:
            assert self._phase2_view is not None and self._phase2_backoff is not None
            if self._phase2_view.contains(slot):
                return self._phase2_backoff.marginal_probability(
                    self._phase2_view.local_index(slot)
                )
            return 0.0
        assert self._ctrl_view is not None and self._data_view is not None
        assert self._ctrl_batch is not None and self._data_batch is not None
        if self._ctrl_view.contains(slot):
            return self._ctrl_batch.probability(self._ctrl_view.local_index(slot))
        if self._data_view.contains(slot):
            return self._data_batch.probability(self._data_view.local_index(slot))
        return 0.0

    def on_feedback(
        self, slot: int, feedback: Feedback, broadcast: bool, success_was_own: bool
    ) -> None:
        if success_was_own or feedback is not Feedback.SUCCESS:
            return
        if self._phase is Phase.SYNCHRONIZE:
            self._start_phase2(slot)
        elif self._phase is Phase.WAIT_CONTROL:
            assert self._phase2_view is not None
            if self._phase2_view.contains(slot):
                self._start_phase3(slot)
        else:  # Phase 3
            assert self._ctrl_view is not None
            if self._ctrl_view.contains(slot):
                self._start_phase3(slot)

    # --------------------------------------------------------------- lockstep

    def lockstep_program(self) -> Optional[LockstepProgram]:
        # Only the exact bundled classes get a columnar program: a subclass
        # overriding any hook would silently diverge from the columnar replay.
        if type(self) not in (ChenJiangZhengProtocol, GlobalClockVariant):
            return None
        return CJZLockstepProgram(
            self._params, global_clock=type(self) is GlobalClockVariant
        )


class CJZLockstepProgram(LockstepProgram):
    """Columnar population state of the CJZ protocol for the lockstep kernel.

    Per-node state is three phase anchors plus the ``h``-backoff plan of the
    current stage:

    * ``phase`` — 1 (SYNCHRONIZE), 2 (WAIT_CONTROL) or 3 (BATCH);
    * ``anchor1`` — the arrival slot (Phase 1's virtual-channel anchor);
    * ``anchor2`` — Phase 2's channel anchor (``l1 + 1``);
    * ``anchor3`` — Phase 3's anchor ``l3`` (control channel at ``l3 + 1``);
    * ``stage`` / ``plan`` / ``plan_ptr`` / ``next_planned`` — the realized
      send plan of the current backoff stage, stored as a sorted row of
      local indices so the per-slot membership test is one comparison.

    RNG consumption mirrors the per-node reference exactly: entering backoff
    stage ``k >= 1`` draws the stage's send plan as ``count`` bounded
    integers (stage 0 consumes nothing — numpy's zero-range path), and every
    Phase-3 slot draws one ``random()`` double for the active batch
    subroutine.  ``h``-batch probabilities are table lookups built with the
    same scalar calls ``HBatch.probability`` makes, so comparisons are
    float-identical.
    """

    def __init__(
        self, parameters: AlgorithmParameters, global_clock: bool = False
    ) -> None:
        self._params = parameters
        self._global_clock = global_clock
        self._pool = None
        self._trials = 0
        self._capacity = 0

    # ----------------------------------------------------------------- setup

    def _build_tables(self, horizon: int):
        """Stage counts and ``h``-batch tables shared with the compiled tier.

        Memoized process-wide by the spec-derived parameters and the horizon
        (:mod:`repro.sim.artifacts`): the scalar probability calls dominate
        dispatch cost for repeated sweep points over equivalent protocols,
        and the tables are pure functions of ``(params, horizon)``.
        Parameters outside the spec surface (``from_f``, hand-assembled
        rates) have no stable identity and build uncached.  All consumers
        treat the returned arrays as read-only.
        """
        from ..errors import SpecError
        from ..sim import artifacts

        try:
            key = (
                "cjz-tables",
                artifacts.canonical_key(self._params.to_spec_params()),
                horizon,
            )
        except SpecError:
            return self._compute_tables(horizon)
        return artifacts.cached_artifact(
            key, lambda: self._compute_tables(horizon)
        )

    def _compute_tables(self, horizon: int):
        """Stage counts clamp exactly as ``HBackoff._enter_stage`` does; the
        probability tables are built with the same scalar calls
        ``HBatch.probability`` would make, so both the columnar and the
        compiled `uniform < p` comparisons are float-identical.
        """
        params = self._params
        stage_counts = [
            min(params.backoff_budget(1 << k), 1 << k) for k in range(32)
        ]
        # index = local slot index (0 unused).
        size = horizon + 2
        ctrl_table = np.zeros(size)
        data_table = np.zeros(size)
        ctrl, data = params.ctrl_probability, params.data_probability
        ctrl_table[1:] = [ctrl(i) for i in range(1, size)]
        data_table[1:] = [data(i) for i in range(1, size)]
        return stage_counts, ctrl_table, data_table

    def compiled_tables(self, horizon: int) -> CompiledProgramTables:
        def build() -> CompiledProgramTables:
            stage_counts, ctrl_table, data_table = self._build_tables(horizon)
            return CompiledProgramTables.build(
                opcode=OP_CJZ,
                # [phase, anchor1, anchor2, anchor3, stage, plan_ptr,
                #  next_planned]
                int_state_width=7,
                float_state_width=0,
                prog_i=[1 if self._global_clock else 0],
                plan_width=max(stage_counts) + 1,
                stage_counts=stage_counts,
                table_ctrl=ctrl_table,
                table_data=data_table,
            )

        from ..errors import SpecError
        from ..sim import artifacts

        try:
            key = (
                "cjz-compiled-tables",
                artifacts.canonical_key(self._params.to_spec_params()),
                self._global_clock,
                horizon,
            )
        except SpecError:
            return build()
        return artifacts.cached_artifact(key, build)

    def bind(self, trials: int, capacity: int, pool, horizon: int) -> None:
        self._pool = pool
        self._trials = trials
        self._capacity = capacity
        self._stage_counts, self._ctrl_table, self._data_table = (
            self._build_tables(horizon)
        )
        self._plan_width = max(self._stage_counts) + 1
        rows = trials * capacity
        self._phase = np.zeros(rows, dtype=np.int8)
        self._anchor1 = np.zeros(rows, dtype=np.int64)
        self._anchor2 = np.zeros(rows, dtype=np.int64)
        self._anchor3 = np.zeros(rows, dtype=np.int64)
        self._stage = np.full(rows, -1, dtype=np.int64)
        self._plan = np.full((rows, self._plan_width), LOCKSTEP_SENTINEL, np.int64)
        self._plan_ptr = np.zeros(rows, dtype=np.int64)
        self._next_planned = np.full(rows, LOCKSTEP_SENTINEL, dtype=np.int64)

    def grow(self, trials: int, old_capacity: int, new_capacity: int) -> None:
        args = (trials, old_capacity, new_capacity)
        self._capacity = new_capacity
        self._phase = grow_flat_column(self._phase, *args)
        self._anchor1 = grow_flat_column(self._anchor1, *args)
        self._anchor2 = grow_flat_column(self._anchor2, *args)
        self._anchor3 = grow_flat_column(self._anchor3, *args)
        self._stage = grow_flat_column(self._stage, *args, fill=-1)
        self._plan = grow_flat_column(self._plan, *args, fill=LOCKSTEP_SENTINEL)
        self._plan_ptr = grow_flat_column(self._plan_ptr, *args)
        self._next_planned = grow_flat_column(
            self._next_planned, *args, fill=LOCKSTEP_SENTINEL
        )

    # ---------------------------------------------------------------- arrive

    def arrive(self, rows: np.ndarray, slot: int) -> None:
        if self._global_clock:
            # GlobalClockVariant: straight to Phase 2 on the globally known
            # control channel, anchored at the next odd slot.
            self._phase[rows] = 2
            self._anchor2[rows] = slot if slot % 2 == 1 else slot + 1
        else:
            self._phase[rows] = 1
            self._anchor1[rows] = slot
        self._stage[rows] = -1
        self._next_planned[rows] = LOCKSTEP_SENTINEL

    # ------------------------------------------------------------------ step

    def step(self, rows: np.ndarray, slot: int) -> np.ndarray:
        sends = np.zeros(len(rows), dtype=bool)
        phase = self._phase[rows]
        parity = slot & 1
        mask12 = phase < 3
        if mask12.any():
            # Phases 1 and 2 both run (f/a)-backoff, differing only in the
            # virtual-channel anchor — one merged pass handles both.
            self._step_backoff(rows, sends, mask12, phase, slot, parity)
        mask3 = phase == 3
        if mask3.any():
            self._step_batch(rows, sends, mask3, slot, parity)
        return sends

    def _step_backoff(
        self,
        rows: np.ndarray,
        sends: np.ndarray,
        mask: np.ndarray,
        phase: np.ndarray,
        slot: int,
        parity: int,
    ) -> None:
        """One slot of ``(f/a)``-backoff on each node's phase channel."""
        positions = np.nonzero(mask)[0]
        selected = rows[positions]
        anchor = np.where(
            phase[positions] == 1,
            self._anchor1[selected],
            self._anchor2[selected],
        )
        on_channel = ((anchor & 1) == parity) & (slot >= anchor)
        if not on_channel.any():
            return
        positions = positions[on_channel]
        selected = selected[on_channel]
        local = ((slot - anchor[on_channel]) >> 1) + 1
        # floor(log2(local)) == frexp exponent - 1, exact for int64 locals.
        stage = np.frexp(local.astype(np.float64))[1].astype(np.int64) - 1
        entering = stage != self._stage[selected]
        if entering.any():
            self._enter_stages(selected[entering], stage[entering])
        hits = self._next_planned[selected] == local
        if hits.any():
            hit_rows = selected[hits]
            pointer = self._plan_ptr[hit_rows] + 1
            self._plan_ptr[hit_rows] = pointer
            self._next_planned[hit_rows] = self._plan[hit_rows, pointer]
            sends[positions[hits]] = True

    def _enter_stages(self, rows: np.ndarray, stages: np.ndarray) -> None:
        """Draw and store the send plans of freshly entered backoff stages."""
        for k in np.unique(stages).tolist():
            selected = rows[stages == k]
            count = self._stage_counts[k]
            if k == 0:
                # integers(1, 2, size=count) is numpy's zero-range path: no
                # randomness is consumed and every draw equals 1.
                draws = np.ones((1, len(selected)), dtype=np.int64)
            else:
                draws = self._pool.pow2_batch(selected, k, count)
                draws.sort(axis=0)
                if count > 1:
                    # Duplicates collapse (drawing with replacement); push
                    # them past the end so the plan row is sorted + unique.
                    duplicate = np.zeros_like(draws, dtype=bool)
                    duplicate[1:] = draws[1:] == draws[:-1]
                    if duplicate.any():
                        draws[duplicate] = LOCKSTEP_SENTINEL
                        draws.sort(axis=0)
            plan = np.full(
                (len(selected), self._plan_width), LOCKSTEP_SENTINEL, np.int64
            )
            plan[:, : draws.shape[0]] = draws.T
            self._plan[selected] = plan
            self._plan_ptr[selected] = 0
            self._next_planned[selected] = draws[0]
            self._stage[selected] = k

    def _step_batch(
        self,
        rows: np.ndarray,
        sends: np.ndarray,
        mask: np.ndarray,
        slot: int,
        parity: int,
    ) -> None:
        """One slot of Phase 3: both ``h``-batches, one per virtual channel."""
        positions = np.nonzero(mask)[0]
        selected = rows[positions]
        anchor3 = self._anchor3[selected]
        # Control channel is anchored at l3+1, data at l3+2; together they
        # cover every slot > l3, so exactly one batch draws each slot.
        on_ctrl = ((anchor3 + 1) & 1) == parity
        local = np.where(
            on_ctrl,
            ((slot - anchor3 - 1) >> 1) + 1,
            ((slot - anchor3 - 2) >> 1) + 1,
        )
        probability = np.where(
            on_ctrl, self._ctrl_table[local], self._data_table[local]
        )
        uniforms = self._pool.doubles(selected)
        hits = uniforms < probability
        sends[positions[hits]] = True

    # -------------------------------------------------------------- feedback

    def feedback(
        self,
        slot: int,
        rows: np.ndarray,
        sends: np.ndarray,
        trial_success: np.ndarray,
        own_success: np.ndarray,
    ) -> None:
        heard = trial_success & ~own_success
        if not heard.any():
            return
        selected = rows[heard]
        phase = self._phase[selected]
        parity = slot & 1
        mask1 = phase == 1
        if mask1.any():
            starters = selected[mask1]
            self._phase[starters] = 2
            self._anchor2[starters] = slot + 1
            self._stage[starters] = -1
            self._next_planned[starters] = LOCKSTEP_SENTINEL
        mask2 = phase == 2
        if mask2.any():
            waiting = selected[mask2]
            anchor2 = self._anchor2[waiting]
            synchronized = ((anchor2 & 1) == parity) & (slot >= anchor2)
            starters = waiting[synchronized]
            self._phase[starters] = 3
            self._anchor3[starters] = slot
        mask3 = phase == 3
        if mask3.any():
            batching = selected[mask3]
            anchor3 = self._anchor3[batching]
            on_ctrl = (((anchor3 + 1) & 1) == parity) & (slot > anchor3)
            self._anchor3[batching[on_ctrl]] = slot


class GlobalClockVariant(ChenJiangZhengProtocol):
    """Ablation: assume a global clock so channel roles never need negotiating.

    With a global clock the odd channel can simply be declared the control
    channel and the even channel the data channel, removing the need for
    Phase 1 (the role-agreement phase).  A node starts directly in Phase 2,
    running backoff on the (globally known) control channel.  Comparing this
    variant against the full protocol isolates the cost of reaching agreement
    on channel roles without a clock.
    """

    name = "cjz-global-clock"
    spec_kind = "cjz-global-clock"

    def on_arrival(self, slot: int, rng: np.random.Generator) -> None:
        super().on_arrival(slot, rng)
        # Jump straight to Phase 2 with the odd channel (global parity) as the
        # control channel: anchor the Phase-2 view at the next odd slot.
        next_odd = slot if slot % 2 == 1 else slot + 1
        self._phase = Phase.WAIT_CONTROL
        self._phase2_view = VirtualChannelView(anchor_slot=next_odd, same_parity=True)
        self._phase2_backoff = HBackoff(self._params.backoff_budget, rng)


def cjz_factory(
    parameters: Optional[AlgorithmParameters] = None,
    global_clock: bool = False,
):
    """Protocol factory for the simulator (fresh instance per arriving node)."""
    params = parameters or AlgorithmParameters.from_g()
    cls = GlobalClockVariant if global_clock else ChenJiangZhengProtocol
    return make_factory(cls, params)
