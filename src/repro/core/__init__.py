"""The paper's primary contribution: the Chen–Jiang–Zheng protocol.

The protocol achieves (f, g)-throughput for ``f(x) = Θ(log x / log² g(x))``,
matching the impossibility bound of Theorem 1.3.  It is assembled from two
exponential-backoff variants (``h-backoff`` and ``h-batch``) executed over two
virtual channels (odd and even slots) through a three-phase state machine.
"""

from .parameters import AlgorithmParameters
from .phases import Phase
from .protocol import ChenJiangZhengProtocol, GlobalClockVariant, cjz_factory
from .subroutines import HBackoff, HBatch

__all__ = [
    "AlgorithmParameters",
    "Phase",
    "ChenJiangZhengProtocol",
    "GlobalClockVariant",
    "cjz_factory",
    "HBackoff",
    "HBatch",
]
