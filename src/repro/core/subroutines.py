"""The two backoff variants the algorithm is built from.

Both subroutines operate in *local* slot indices: index 1 is the first slot of
the virtual channel they run on, index 2 the next slot of that channel, and so
on.  The protocol layer translates global slot numbers into local indices via
:class:`~repro.channel.virtual.VirtualChannelView`.

``h``-backoff (adaptive, stage-based)
    For every stage ``k ≥ 0``, covering local indices ``[2^k, 2^{k+1})``
    (length ``2^k``), the node picks ``h(2^k)`` indices uniformly at random
    with replacement from the stage and broadcasts exactly in those.  The
    expected per-slot sending rate of stage ``k`` is therefore roughly
    ``h(2^k) / 2^k``, but crucially the *number* of sends per stage is fixed in
    advance, which is what makes the subroutine robust to front-loaded
    jamming (the node never "uses up" its aggressiveness early).

``h``-batch (oblivious, rate-based)
    In local slot ``k`` the node broadcasts with probability ``min(1, h(k))``
    independently of everything else.  With ``h(x) = 1/x`` this is the
    textbook "broadcast with probability 1/i in slot i" exponential backoff.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

import numpy as np

from ..errors import ConfigurationError

__all__ = ["HBackoff", "HBatch"]


class HBackoff:
    """Stage-based backoff: a fixed number of random send slots per doubling stage."""

    def __init__(
        self,
        budget: Callable[[int], int],
        rng: np.random.Generator,
    ) -> None:
        """``budget(stage_length)`` gives the number of sends for a stage of that length."""
        self._budget = budget
        self._rng = rng
        self._current_stage = -1
        self._stage_start = 1  # local index where the current stage begins
        self._stage_length = 1
        self._send_indices: Set[int] = set()
        self._sends_planned = 0

    @property
    def current_stage(self) -> int:
        return self._current_stage

    @property
    def planned_sends_in_stage(self) -> int:
        return self._sends_planned

    def _enter_stage(self, stage: int) -> None:
        self._current_stage = stage
        self._stage_start = 2**stage
        self._stage_length = 2**stage
        count = self._budget(self._stage_length)
        if count < 0:
            raise ConfigurationError("backoff budget must be non-negative")
        count = min(count, self._stage_length) if self._stage_length > 0 else 0
        self._sends_planned = count
        if count == 0:
            self._send_indices = set()
            return
        draws = self._rng.integers(
            self._stage_start, self._stage_start + self._stage_length, size=count
        )
        # Drawing *with replacement* per the paper; duplicates collapse, which
        # only reduces the number of distinct send slots (never increases it).
        self._send_indices = {int(d) for d in draws}

    def should_send(self, local_index: int) -> bool:
        """Whether the subroutine broadcasts at this local index (1-based)."""
        if local_index < 1:
            raise ConfigurationError("local index must be >= 1")
        stage = local_index.bit_length() - 1  # floor(log2(local_index))
        if stage != self._current_stage:
            if stage < self._current_stage:
                raise ConfigurationError("local indices must be non-decreasing")
            self._enter_stage(stage)
        return local_index in self._send_indices

    def marginal_probability(self, local_index: int) -> float:
        """A-priori probability that ``local_index`` is one of the stage's send slots.

        A stage of length ``L`` draws ``count`` indices uniformly with
        replacement, so a fixed index is chosen with probability
        ``1 - (1 - 1/L)^count``.  This is the population-level sending rate the
        vectorized/analysis layers use; it deliberately ignores the already
        realized plan of the current stage.
        """
        if local_index < 1:
            raise ConfigurationError("local index must be >= 1")
        stage = local_index.bit_length() - 1
        length = 2**stage
        count = max(0, min(self._budget(length), length))
        if count == 0:
            return 0.0
        return 1.0 - (1.0 - 1.0 / length) ** count

    def expected_sends_up_to(self, local_index: int) -> int:
        """Upper bound on the number of sends in local slots ``1..local_index``.

        Used by tests to verify the subroutine's total send count is
        ``O(f(t) · log t)`` as the analysis assumes.
        """
        total = 0
        stage = 0
        while 2**stage <= local_index:
            total += self._budget(2**stage)
            stage += 1
        return total


class HBatch:
    """Rate-based batch: broadcast with probability ``min(1, h(k))`` in local slot ``k``."""

    def __init__(
        self,
        rate: Callable[[float], float],
        rng: np.random.Generator,
    ) -> None:
        self._rate = rate
        self._rng = rng

    def probability(self, local_index: int) -> float:
        if local_index < 1:
            raise ConfigurationError("local index must be >= 1")
        return min(1.0, float(self._rate(float(local_index))))

    def should_send(self, local_index: int) -> bool:
        return bool(self._rng.random() < self.probability(local_index))
