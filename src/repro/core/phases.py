"""Phase state of the Chen–Jiang–Zheng protocol."""

from __future__ import annotations

import enum

__all__ = ["Phase"]


class Phase(enum.Enum):
    """The three phases a node moves through after arriving.

    * ``SYNCHRONIZE`` (Phase 1): run ``(f/a)``-backoff on the virtual channel
      of the arrival slot's parity until *any* success is heard; the channel
      on which that success occurred becomes the node's data channel.
    * ``WAIT_CONTROL`` (Phase 2): run ``(f/a)``-backoff on the other channel
      (the control channel) until a success is heard *on that channel*; this
      success synchronizes all waiting nodes.
    * ``BATCH`` (Phase 3): run ``h_ctrl``-batch on the control channel and
      ``h_data``-batch on the data channel; a success on the control channel
      ends the batch, swaps the channel roles and restarts Phase 3.
    """

    SYNCHRONIZE = 1
    WAIT_CONTROL = 2
    BATCH = 3

    @property
    def paper_number(self) -> int:
        return self.value
