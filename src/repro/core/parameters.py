"""Parameterization of the Chen–Jiang–Zheng protocol.

The protocol takes the jamming budget function ``g`` as input (``log g(x) =
O(sqrt(log x))``) and derives everything else from it:

* the arrival budget ``f(x) = a·c2·log x / log²(g(x)/a)`` (Theorem 1.2);
* the ``backoff`` subroutine's per-stage send budget ``⌈f(stage length)/a⌉``
  (the paper's ``(f/a)``-backoff);
* the control-channel batch rate ``h_ctrl(x) = c3·log x / x``;
* the data-channel batch rate ``h_data(x) = 1/x``.

The constants ``a``, ``c2`` and ``c3`` are "sufficiently large" in the paper;
the defaults here are moderate values chosen so the asymptotic behaviour is
already visible at simulable scales (10³–10⁶ slots).  All of them can be
overridden, and the ablation benchmark sweeps ``c3``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import ConfigurationError
from ..functions import RateFunction, constant_g, derive_f, h_ctrl, h_data

__all__ = ["AlgorithmParameters"]


@dataclass(frozen=True)
class AlgorithmParameters:
    """Immutable bundle of the protocol's functions and constants."""

    g: RateFunction
    f: RateFunction
    a: float = 1.0
    c2: float = 1.0
    c3: float = 4.0
    ctrl_rate: RateFunction = field(default_factory=lambda: h_ctrl(4.0))
    data_rate: RateFunction = field(default_factory=h_data)

    def __post_init__(self) -> None:
        if self.a <= 0 or self.c2 <= 0 or self.c3 <= 0:
            raise ConfigurationError("constants a, c2, c3 must be positive")

    @classmethod
    def from_g(
        cls,
        g: Optional[RateFunction] = None,
        a: float = 1.0,
        c2: float = 1.0,
        c3: float = 4.0,
    ) -> "AlgorithmParameters":
        """Standard construction: derive ``f`` from the jamming budget ``g``.

        With no arguments this targets the worst case the paper highlights:
        ``g`` constant (constant-fraction jamming), for which the best
        achievable ``f`` is Θ(log t).
        """
        g = g or constant_g(4.0)
        f = derive_f(g, a=a, c2=c2)
        return cls(g=g, f=f, a=a, c2=c2, c3=c3, ctrl_rate=h_ctrl(c3), data_rate=h_data())

    @classmethod
    def from_f(
        cls,
        f: RateFunction,
        g: Optional[RateFunction] = None,
        a: float = 1.0,
        c3: float = 4.0,
    ) -> "AlgorithmParameters":
        """Construct with an explicitly chosen ``f`` (used by ablation variants)."""
        g = g or constant_g(4.0)
        return cls(g=g, f=f, a=a, c2=1.0, c3=c3, ctrl_rate=h_ctrl(c3), data_rate=h_data())

    def backoff_budget(self, stage_length: int) -> int:
        """Number of send attempts per ``backoff`` stage of the given length.

        This realizes the ``(f/a)``-backoff of the algorithm description: a
        stage of length ``L`` gets ``⌈f(L)/a⌉`` uniformly random send slots.
        """
        if stage_length < 1:
            raise ConfigurationError("stage length must be >= 1")
        budget = math.ceil(self.f(float(max(stage_length, 2))) / self.a)
        return max(1, min(budget, stage_length))

    def ctrl_probability(self, local_index: int) -> float:
        """Control-channel batch sending probability at the given local slot index."""
        if local_index < 1:
            raise ConfigurationError("local index must be >= 1")
        return min(1.0, self.ctrl_rate(float(local_index)))

    def data_probability(self, local_index: int) -> float:
        """Data-channel batch sending probability at the given local slot index."""
        if local_index < 1:
            raise ConfigurationError("local index must be >= 1")
        return min(1.0, self.data_rate(float(local_index)))

    def describe(self) -> str:
        return (
            f"AlgorithmParameters(g={self.g.name}, f={self.f.name}, "
            f"a={self.a:g}, c2={self.c2:g}, c3={self.c3:g})"
        )

    # ------------------------------------------------------------ spec layer

    def to_spec_params(self) -> dict:
        """Serializable recipe, defined for :meth:`from_g`-style instances.

        The declarative protocol spec stores ``g`` plus the constants and
        rebuilds everything else through :meth:`from_g`; instances whose ``f``
        was chosen independently (``from_f`` ablations, hand-assembled
        bundles) have no faithful recipe and raise ``SpecError``.
        """
        # Imported lazily: repro.spec imports this module at package-init time.
        from ..errors import SpecError
        from ..spec.rates import rate_function_to_spec

        g_spec = rate_function_to_spec(self.g)
        expected_f = {
            "kind": "derived-f",
            "params": {"g": g_spec, "a": self.a, "c2": self.c2, "floor": 1.0},
        }
        if self.f.spec != expected_f:
            raise SpecError(
                f"{self.describe()} was not built via AlgorithmParameters.from_g "
                "and cannot be serialized (its f is not the one derived from g)"
            )
        return {"g": g_spec, "a": self.a, "c2": self.c2, "c3": self.c3}

    @classmethod
    def from_spec_params(cls, params: dict) -> "AlgorithmParameters":
        """Inverse of :meth:`to_spec_params` (rebuilds through :meth:`from_g`)."""
        from ..spec.rates import rate_function_from_spec

        g = rate_function_from_spec(params["g"]) if "g" in params else None
        return cls.from_g(
            g,
            a=float(params.get("a", 1.0)),
            c2=float(params.get("c2", 1.0)),
            c3=float(params.get("c3", 4.0)),
        )
