"""Reproduction of *Tight Trade-off in Contention Resolution without Collision Detection*.

Chen, Jiang and Zheng (PODC 2021) characterize the exact trade-off between
throughput and jamming-resistance for contention resolution on a
multiple-access channel without collision detection.  This package contains a
full reproduction stack:

* a slot-synchronous simulator of the multiple-access channel (``repro.sim``,
  ``repro.channel``);
* an adaptive adversary framework with the arrival and jamming strategies used
  in the paper's proofs (``repro.adversary``);
* the paper's three-phase algorithm (``repro.core``) and the classical
  baselines it is compared against (``repro.protocols``);
* throughput/latency/energy metrics including a checker for the paper's
  (f, g)-throughput definition (``repro.metrics``);
* the experiments that reproduce every theorem-level claim of the paper
  (``repro.experiments``) and the analysis utilities they use
  (``repro.analysis``).

Quickstart
----------

>>> from repro import quick_run
>>> result = quick_run(arrivals=64, horizon=4096, jam_fraction=0.25, seed=7)
>>> result.total_successes > 0
True
"""

from __future__ import annotations

from typing import Optional

from .channel import MultipleAccessChannel, NoCollisionDetection, WithCollisionDetection
from .core import AlgorithmParameters, ChenJiangZhengProtocol, cjz_factory
from .functions import (
    GFamily,
    RateFunction,
    STANDARD_G_FAMILIES,
    constant_g,
    derive_f,
    exp_sqrt_log_g,
    log_g,
    polylog_g,
)
from .metrics import check_fg_throughput, summarize_energy, summarize_latencies
from .sim import SimulationResult, Simulator, SimulatorConfig, run_trials
from .version import __version__

__all__ = [
    "__version__",
    "MultipleAccessChannel",
    "NoCollisionDetection",
    "WithCollisionDetection",
    "AlgorithmParameters",
    "ChenJiangZhengProtocol",
    "cjz_factory",
    "RateFunction",
    "GFamily",
    "STANDARD_G_FAMILIES",
    "constant_g",
    "log_g",
    "polylog_g",
    "exp_sqrt_log_g",
    "derive_f",
    "check_fg_throughput",
    "summarize_latencies",
    "summarize_energy",
    "Simulator",
    "SimulatorConfig",
    "SimulationResult",
    "run_trials",
    "quick_run",
]


def quick_run(
    arrivals: int = 64,
    horizon: int = 4096,
    jam_fraction: float = 0.0,
    seed: Optional[int] = None,
    keep_trace: bool = False,
    backend: str = "auto",
) -> SimulationResult:
    """Run the paper's algorithm once on a simple workload and return the result.

    ``arrivals`` nodes are injected as a batch in slot 1 and every slot is
    independently jammed with probability ``jam_fraction``.  This is the
    one-call entry point used by the README quickstart.
    """
    from .adversary import BatchArrivals, ComposedAdversary, NoJamming, RandomFractionJamming

    def adversary_factory():
        jamming = (
            RandomFractionJamming(jam_fraction) if jam_fraction > 0 else NoJamming()
        )
        return ComposedAdversary(BatchArrivals(arrivals), jamming)

    simulator = Simulator(
        protocol_factory=cjz_factory(),
        adversary=adversary_factory(),
        config=SimulatorConfig(horizon=horizon, keep_trace=keep_trace),
        seed=seed,
        backend=backend,
    )
    return simulator.run()
