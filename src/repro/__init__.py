"""Reproduction of *Tight Trade-off in Contention Resolution without Collision Detection*.

Chen, Jiang and Zheng (PODC 2021) characterize the exact trade-off between
throughput and jamming-resistance for contention resolution on a
multiple-access channel without collision detection.  This package contains a
full reproduction stack:

* a slot-synchronous simulator of the multiple-access channel (``repro.sim``,
  ``repro.channel``);
* an adaptive adversary framework with the arrival and jamming strategies used
  in the paper's proofs (``repro.adversary``);
* the paper's three-phase algorithm (``repro.core``) and the classical
  baselines it is compared against (``repro.protocols``);
* throughput/latency/energy metrics including a checker for the paper's
  (f, g)-throughput definition (``repro.metrics``);
* the experiments that reproduce every theorem-level claim of the paper
  (``repro.experiments``) and the analysis utilities they use
  (``repro.analysis``).

Quickstart
----------

>>> from repro import quick_run
>>> result = quick_run(arrivals=64, horizon=4096, jam_fraction=0.25, seed=7)
>>> result.total_successes > 0
True
"""

from __future__ import annotations

from typing import Optional

from . import faults
from .channel import MultipleAccessChannel, NoCollisionDetection, WithCollisionDetection
from .core import AlgorithmParameters, ChenJiangZhengProtocol, cjz_factory
from .errors import ConfigurationError, FaultInjected, ReproError, WorkerError
from .faults import FaultPlan, FaultRule
from .functions import (
    GFamily,
    RateFunction,
    STANDARD_G_FAMILIES,
    constant_g,
    derive_f,
    exp_sqrt_log_g,
    log_g,
    polylog_g,
)
from .metrics import (
    MetricPipeline,
    check_fg_throughput,
    summarize_energy,
    summarize_latencies,
)
from .sim import (
    PrefixCounters,
    RunHealth,
    SimulationResult,
    Simulator,
    SimulatorConfig,
    SupervisorPolicy,
    run_trials,
)
from .spec import (
    AdversarySpec,
    PipelineSpec,
    ProtocolSpec,
    StudyPlan,
    StudySpec,
    StudyStore,
    Sweep,
)
from .version import __version__

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "FaultInjected",
    "WorkerError",
    "FaultPlan",
    "FaultRule",
    "faults",
    "RunHealth",
    "SupervisorPolicy",
    "AdversarySpec",
    "ProtocolSpec",
    "StudySpec",
    "StudyPlan",
    "StudyStore",
    "Sweep",
    "MultipleAccessChannel",
    "NoCollisionDetection",
    "WithCollisionDetection",
    "AlgorithmParameters",
    "ChenJiangZhengProtocol",
    "cjz_factory",
    "RateFunction",
    "GFamily",
    "STANDARD_G_FAMILIES",
    "constant_g",
    "log_g",
    "polylog_g",
    "exp_sqrt_log_g",
    "derive_f",
    "check_fg_throughput",
    "summarize_latencies",
    "summarize_energy",
    "MetricPipeline",
    "PipelineSpec",
    "PrefixCounters",
    "Simulator",
    "SimulatorConfig",
    "SimulationResult",
    "run_trials",
    "quick_run",
]


def quick_run(
    arrivals: int = 64,
    horizon: Optional[int] = None,
    jam_fraction: float = 0.0,
    seed: Optional[int] = None,
    keep_trace: bool = False,
    backend: str = "auto",
    scenario: Optional[str] = None,
    adversary_spec=None,
    protocol_spec=None,
) -> SimulationResult:
    """Run the paper's algorithm once on a simple workload and return the result.

    By default ``arrivals`` nodes are injected as a batch in slot 1 and every
    slot is independently jammed with probability ``jam_fraction``.  This is
    the one-call entry point used by the README quickstart.

    The workload can instead come from the declarative spec layer:

    * ``scenario`` — a named scenario key (``"ethernet-burst"``, ...); its
      workload and horizon are used (``horizon`` still overrides).
    * ``adversary_spec`` — a :class:`repro.spec.AdversarySpec`.
    * ``protocol_spec`` — a :class:`repro.spec.ProtocolSpec` to run instead
      of the paper's algorithm with default parameters.

    ``arrivals``/``jam_fraction`` are ignored when a scenario or adversary
    spec supplies the workload.
    """
    from .spec import AdversarySpec

    if scenario is not None:
        if adversary_spec is not None:
            raise ConfigurationError(
                "pass either scenario or adversary_spec, not both"
            )
        from .workloads import get_scenario

        named = get_scenario(scenario)
        adversary_spec = named.adversary_spec()
        horizon = horizon or named.spec.horizon
    horizon = horizon or 4096
    if adversary_spec is None:
        adversary_spec = AdversarySpec.batch(arrivals, jam_fraction=jam_fraction)
    protocol_factory = protocol_spec.build() if protocol_spec is not None else cjz_factory()

    simulator = Simulator(
        protocol_factory=protocol_factory,
        adversary=adversary_spec.build(horizon),
        config=SimulatorConfig(horizon=horizon, keep_trace=keep_trace),
        seed=seed,
        backend=backend,
    )
    return simulator.run()
