"""Benchmark harness: persistent, schema-versioned performance tracking.

``repro bench`` (see :mod:`repro.cli`) runs a micro study-benchmark suite
across all simulation backends plus an optional experiment-level smoke suite,
and writes the results to a ``BENCH_<date>.json`` file.  The committed bench
files form the project's performance trajectory; the comparison mode diffs
two files and reports regressions beyond a threshold, which CI runs against
the committed baseline.

Two kinds of record are emitted:

* ``micro`` — a multi-trial study of a fixed (protocol, adversary, horizon)
  triple, timed per backend.  ``speedup_vs_reference`` and (for the batched
  study kernel) ``speedup_vs_vectorized`` are *per-trial wall-time ratios
  within the same run on the same machine*, which makes them comparable
  across machines — the regression gate uses them, not absolute wall times.
* ``experiment`` — one full experiment (E1..E10) at the smoke scale, wall
  time plus its consistency verdict.

Micro records additionally carry the suite's **memory trajectory**:
``peak_bytes_per_slot`` (tracemalloc peak of the whole study run, normalized
per simulated slot), ``result_bytes_per_slot`` (bytes retained by the
columnar prefix counters after the study returns) and
``legacy_list_bytes_per_slot`` (what the same prefix data would occupy as
the four Python int lists the columnar refactor replaced — measured, not
estimated).  The comparison gate fails on memory growth beyond the
threshold exactly as it does for speedup losses.

Absolute wall times are only compared when the machine fingerprints of the
two files match.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import sys
import time
import tracemalloc
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .adversary import (
    BatchArrivals,
    ComposedAdversary,
    NoJamming,
    PeriodicJamming,
    PoissonArrivals,
    RandomFractionJamming,
    ReactiveJamming,
    UniformRandomArrivals,
)
from .core import cjz_factory
from .errors import ConfigurationError
from .protocols import ProbabilityBackoff, SlottedAloha, make_factory
from .sim import run_trials
from .sim.backends import available_study_backends

__all__ = [
    "SCHEMA_VERSION",
    "collect_bench",
    "compare_bench",
    "default_bench_path",
    "machine_info",
    "profile_workload",
    "render_comparison",
    "run_experiment_suite",
    "run_fused_sweep_suite",
    "run_micro_suite",
    "run_recovery_suite",
    "run_service_suite",
    "write_bench",
]

SCHEMA_VERSION = 1

#: (trials, horizon, nodes) per scale for the micro study workloads.
_SCALES: Dict[str, Tuple[int, int, int]] = {
    "smoke": (40, 192, 3),
    "quick": (200, 192, 3),
    "full": (600, 192, 3),
}

#: Study backends timed by the micro suite, reference first (it anchors the
#: normalized speedups).
_BACKENDS = ("reference", "vectorized", "batched-study")

#: Backends eligible for the feedback-driven CJZ workloads: the protocol is
#: not vector-eligible, so only the reference path and the lockstep study
#: tiers (numpy and compiled) can run it.
_CJZ_BACKENDS = ("reference", "lockstep", "lockstep-jit")

#: Backends whose warm-up pass may compile code; the warm-up wall time is
#: recorded as ``compile_time_s`` so JIT cost stays visible without
#: polluting the steady-state timings.
_JIT_BACKENDS = ("lockstep-jit",)

#: Fixed shape of the CJZ micro workloads (e01/e03 miniatures).  The node
#: count and horizon track the experiments' ratios rather than the tiny
#: ALOHA micro shape, so the lockstep speedup is measured at a population
#: the real studies actually carry.
_CJZ_HORIZON = 256
_CJZ_NODES = 32


def _micro_workloads(horizon: int, nodes: int):
    """The micro study workloads.

    Each entry is ``(id, protocol_factory, adversary_factory, horizon,
    nodes, backends)`` — the CJZ workloads fix their own shape and backend
    set (see :data:`_CJZ_BACKENDS`); the rest use the scale's shape.
    """
    return [
        (
            "study-e01-batch-jam",
            make_factory(SlottedAloha, 0.05),
            lambda: ComposedAdversary(
                BatchArrivals(nodes), RandomFractionJamming(0.25)
            ),
            horizon,
            nodes,
            _BACKENDS,
        ),
        (
            "study-e04-batch-clear",
            make_factory(SlottedAloha, 0.05),
            lambda: ComposedAdversary(BatchArrivals(nodes), NoJamming()),
            horizon,
            nodes,
            _BACKENDS,
        ),
        (
            "study-poisson-periodic",
            make_factory(ProbabilityBackoff, 1.0),
            lambda: ComposedAdversary(
                PoissonArrivals(nodes / horizon, last_slot=horizon // 2),
                PeriodicJamming(7),
            ),
            horizon,
            nodes,
            _BACKENDS,
        ),
        (
            # e01 miniature: the paper's algorithm against batch arrivals
            # under 25% random jamming — the headline lockstep workload.
            "study-e01-cjz-batch-jam",
            cjz_factory(),
            lambda: ComposedAdversary(
                BatchArrivals(_CJZ_NODES), RandomFractionJamming(0.25)
            ),
            _CJZ_HORIZON,
            _CJZ_NODES,
            _CJZ_BACKENDS,
        ),
        (
            # e03 miniature: spread arrivals against the adaptive reactive
            # jammer (25% budget, burst 8) — exercises the columnar
            # adaptive-adversary path.
            "study-e03-cjz-reactive",
            cjz_factory(),
            lambda: ComposedAdversary(
                UniformRandomArrivals(_CJZ_NODES, (1, _CJZ_HORIZON // 4)),
                ReactiveJamming(0.25, burst=8),
            ),
            _CJZ_HORIZON,
            _CJZ_NODES,
            _CJZ_BACKENDS,
        ),
    ]


def machine_info() -> Dict[str, object]:
    """Fingerprint of the benchmarking machine."""
    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def run_micro_suite(
    scale: str = "smoke",
    seed: int = 20210219,
    backends: Optional[Sequence[str]] = None,
    repeats: int = 3,
) -> List[Dict[str, object]]:
    """Time the micro study workloads across backends.

    The reference backend is timed on a subset of the trials (it is one to
    two orders of magnitude slower) and compared per trial; the other
    backends run the full study.  Repeats are interleaved across backends so
    machine drift hits all of them equally; the best time per backend wins.

    ``backends`` restricts the timed set; each workload only runs the
    backends that support it (the feedback-driven CJZ workloads run on
    reference + lockstep, the rest on the array ladder), and a workload
    whose backend set is disjoint from the restriction is skipped.
    """
    if scale not in _SCALES:
        raise ConfigurationError(
            f"scale must be one of {sorted(_SCALES)}, got {scale!r}"
        )
    requested = tuple(backends) if backends else None
    for backend in requested or ():
        if backend not in available_study_backends():
            raise ConfigurationError(
                f"unknown backend {backend!r}; available: "
                f"{', '.join(available_study_backends())}"
            )
    trials, horizon, nodes = _SCALES[scale]
    records: List[Dict[str, object]] = []
    for (
        workload_id,
        protocol_factory,
        adversary_factory,
        workload_horizon,
        workload_nodes,
        workload_backends,
    ) in _micro_workloads(horizon, nodes):
        backends = tuple(
            backend
            for backend in workload_backends
            if requested is None or backend in requested
        )
        if not backends:
            continue
        timings: Dict[str, Tuple[int, float]] = {}
        plans = {
            backend: trials if backend != "reference" else max(4, trials // 10)
            for backend in backends
        }
        # Warm-up pass: primes caches for every backend and, for the JIT
        # tier, pays the numba compile cost outside the timed repeats.  The
        # warm-up wall time is kept so the compile cost stays on record.
        warmup: Dict[str, float] = {}
        for backend, backend_trials in plans.items():
            warmup[backend] = _time_study(
                protocol_factory,
                adversary_factory,
                workload_horizon,
                min(4, backend_trials),
                seed,
                backend,
            )
        for _ in range(max(1, repeats)):
            for backend, backend_trials in plans.items():
                elapsed = _time_study(
                    protocol_factory,
                    adversary_factory,
                    workload_horizon,
                    backend_trials,
                    seed,
                    backend,
                )
                timed, best = timings.get(backend, (backend_trials, float("inf")))
                timings[backend] = (backend_trials, min(best, elapsed))
        memory = {
            backend: _measure_memory(
                protocol_factory,
                adversary_factory,
                workload_horizon,
                backend_trials,
                seed,
                backend,
            )
            for backend, backend_trials in plans.items()
        }
        per_trial = {
            backend: best / timed for backend, (timed, best) in timings.items()
        }
        for backend, (timed, best) in timings.items():
            record: Dict[str, object] = {
                "kind": "micro",
                "id": workload_id,
                "backend": backend,
                "scale": scale,
                "params": {
                    "trials": trials,
                    "trials_timed": timed,
                    "horizon": workload_horizon,
                    "nodes": workload_nodes,
                    "seed": seed,
                },
                "wall_time_s": best,
                "per_trial_s": per_trial[backend],
                "slots_per_second": timed * workload_horizon / best,
            }
            if backend in _JIT_BACKENDS:
                record["compile_time_s"] = warmup[backend]
            record.update(memory[backend])
            if "reference" in per_trial:
                record["speedup_vs_reference"] = (
                    per_trial["reference"] / per_trial[backend]
                )
            if backend == "batched-study" and "vectorized" in per_trial:
                record["speedup_vs_vectorized"] = (
                    per_trial["vectorized"] / per_trial[backend]
                )
            records.append(record)
    return records


def _legacy_list_bytes(result) -> int:
    """Bytes the result's prefix columns would occupy as Python int lists.

    Measures the storage the pre-columnar representation used (four
    ``List[int]`` objects plus their element objects), giving the bench file
    a like-for-like baseline for ``result_bytes_per_slot``.
    """
    if result.counters is None:
        return 0
    total = 0
    for name in ("active", "arrivals", "jammed", "successes"):
        values = result.counters.column(name).tolist()
        total += sys.getsizeof(values)
        total += sum(sys.getsizeof(value) for value in values)
    return total


def _measure_memory(
    protocol_factory,
    adversary_factory: Callable,
    horizon: int,
    trials: int,
    seed: int,
    backend: str,
) -> Dict[str, float]:
    """Memory profile of one study run, normalized per simulated slot."""
    tracemalloc.start()
    try:
        study = run_trials(
            protocol_factory=protocol_factory,
            adversary_factory=adversary_factory,
            horizon=horizon,
            trials=trials,
            seed=seed,
            backend=backend,
        )
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    slots = sum(result.horizon + 1 for result in study.results)
    sample = study.results[0]
    profile = {
        "peak_bytes_per_slot": peak / slots,
        "result_bytes_per_slot": study.memory_bytes() / slots,
        "legacy_list_bytes_per_slot": (
            _legacy_list_bytes(sample) / (sample.horizon + 1)
        ),
    }
    if backend == "batched-study":
        # Streaming keeps only summaries; record the retained bytes to make
        # the O(1)-memory mode visible in the trajectory.
        streamed = run_trials(
            protocol_factory=protocol_factory,
            adversary_factory=adversary_factory,
            horizon=horizon,
            trials=trials,
            seed=seed,
            backend=backend,
            streaming=True,
        )
        profile["streaming_result_bytes_per_slot"] = (
            streamed.memory_bytes() / slots
        )
    return profile


def _time_study(
    protocol_factory,
    adversary_factory: Callable,
    horizon: int,
    trials: int,
    seed: int,
    backend: str,
) -> float:
    start = time.perf_counter()
    run_trials(
        protocol_factory=protocol_factory,
        adversary_factory=adversary_factory,
        horizon=horizon,
        trials=trials,
        seed=seed,
        backend=backend,
    )
    return time.perf_counter() - start


def profile_workload(
    workload_id: str,
    scale: str = "smoke",
    seed: int = 20210219,
    backend: Optional[str] = None,
) -> str:
    """cProfile one micro workload; top-20 entries by cumulative time.

    Runs the workload once on ``backend`` (default: the workload's fastest
    eligible tier) after an untimed warm-up, so JIT compilation does not
    dominate the profile.  Returns the rendered ``pstats`` report.
    """
    import cProfile
    import io
    import pstats

    if scale not in _SCALES:
        raise ConfigurationError(
            f"scale must be one of {sorted(_SCALES)}, got {scale!r}"
        )
    trials, horizon, nodes = _SCALES[scale]
    for (
        candidate_id,
        protocol_factory,
        adversary_factory,
        workload_horizon,
        _workload_nodes,
        workload_backends,
    ) in _micro_workloads(horizon, nodes):
        if candidate_id == workload_id:
            break
    else:
        known = ", ".join(
            entry[0] for entry in _micro_workloads(horizon, nodes)
        )
        raise ConfigurationError(
            f"unknown benchmark id {workload_id!r}; available: {known}"
        )
    chosen = backend or workload_backends[-1]
    if chosen not in available_study_backends():
        raise ConfigurationError(
            f"unknown backend {chosen!r}; available: "
            f"{', '.join(available_study_backends())}"
        )
    profiled_trials = trials if chosen != "reference" else max(4, trials // 10)
    _time_study(  # warm-up: compile/caches outside the profile
        protocol_factory,
        adversary_factory,
        workload_horizon,
        min(4, profiled_trials),
        seed,
        chosen,
    )
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run_trials(
            protocol_factory=protocol_factory,
            adversary_factory=adversary_factory,
            horizon=workload_horizon,
            trials=profiled_trials,
            seed=seed,
            backend=chosen,
        )
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(20)
    header = (
        f"profile {workload_id} [backend={chosen}] "
        f"trials={profiled_trials} horizon={workload_horizon}\n"
    )
    return header + buffer.getvalue()


def run_experiment_suite(
    seed: int = 20210219, trials: int = 2
) -> List[Dict[str, object]]:
    """Time every registered experiment once at the smoke scale."""
    from .experiments import ExperimentConfig, all_experiments, run_experiment

    config = ExperimentConfig(trials=trials, seed=seed, scale="smoke")
    records = []
    for experiment_id in all_experiments():
        start = time.perf_counter()
        result = run_experiment(experiment_id, config)
        elapsed = time.perf_counter() - start
        records.append(
            {
                "kind": "experiment",
                "id": experiment_id,
                "backend": config.backend,
                "scale": config.scale,
                "params": {"trials": trials, "seed": seed},
                "wall_time_s": elapsed,
                "consistent_with_paper": result.consistent_with_paper,
            }
        )
    return records


def run_service_suite(
    seed: int = 20210219, repeats: int = 3
) -> List[Dict[str, object]]:
    """Time the sweep service: a cold submit round trip, then cached hits.

    Spins an in-process :class:`~repro.serve.BackgroundServer` over a
    throwaway 2-shard store, submits a small spec batch cold (execution +
    protocol overhead) and then re-submits it ``repeats`` times so every
    point is answered from memory — the cached-hit path is pure server/
    client/serialization cost.  One ``micro`` record,
    ``id="service-submit-roundtrip"``; older baselines without it compare
    clean (records absent from the baseline are skipped).
    """
    import tempfile

    from .serve import BackgroundServer, ServeClient
    from .workloads import scenario_study

    horizon = 256
    trials = 2
    base = scenario_study("adversarial-jam").with_overrides(
        {"trials": trials, "horizon": horizon}
    )
    specs = [base.with_overrides({"seed": seed + index}) for index in range(4)]
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as root:
        with BackgroundServer(root, shards=2, workers=2) as server:
            client = ServeClient(*server.address)
            start = time.perf_counter()
            outcomes = client.submit(specs)
            cold = time.perf_counter() - start
            failed = [o for o in outcomes if not o.ok]
            if failed:
                raise ConfigurationError(
                    f"service bench submit failed: {failed[0].error}"
                )
            cached_best = float("inf")
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                client.submit(specs)
                cached_best = min(cached_best, time.perf_counter() - start)
    return [
        {
            "kind": "micro",
            "id": "service-submit-roundtrip",
            "backend": "serve",
            "scale": "smoke",
            "params": {
                "specs": len(specs),
                "trials": trials,
                "horizon": horizon,
                "seed": seed,
            },
            "wall_time_s": cold,
            "slots_per_second": len(specs) * trials * horizon / cold,
            "cold_submit_s": cold,
            "cached_submit_s": cached_best,
            "cached_hits_per_second": len(specs) / cached_best,
        }
    ]


def run_recovery_suite(
    seed: int = 20210219, repeats: int = 3
) -> List[Dict[str, object]]:
    """Time WAL replay: a restarted server absorbing a 64-job backlog.

    Builds a :class:`~repro.serve.ServeJournal` of 64 ``accepted`` jobs
    whose results already sit in the store — the post-crash shape where the
    daemon died after finishing the work but before journaling it — and
    times ``SweepServer.start()``, which replays the journal and answers
    every backlog job from the store.  Best-of-``repeats`` wall time; one
    ``micro`` record, ``id="service-recovery"``, absent from older
    baselines (``--compare`` skips records the baseline lacks).
    """
    import asyncio
    import tempfile

    from .serve import ServeJournal, ShardedStudyStore, SweepServer
    from .workloads import scenario_study

    horizon = 128
    trials = 1
    jobs = 64
    base = scenario_study("adversarial-jam").with_overrides(
        {"trials": trials, "horizon": horizon}
    )
    specs = [base.with_overrides({"seed": seed + index}) for index in range(jobs)]
    with tempfile.TemporaryDirectory(prefix="repro-bench-recovery-") as root:
        store = ShardedStudyStore(Path(root) / "store", shards=2)
        for spec in specs:
            spec.run(store=store)

        async def _replay(journal_path: Path) -> float:
            server = SweepServer(
                store, port=0, workers=2, journal=journal_path
            )
            start = time.perf_counter()
            await server.start()
            elapsed = time.perf_counter() - start
            try:
                stats = server.stats
                if stats.recovered != jobs or stats.cache_hits != jobs:
                    raise ConfigurationError(
                        f"recovery bench expected {jobs} store-answered "
                        f"jobs, recovered {stats.recovered} with "
                        f"{stats.cache_hits} cache hits"
                    )
            finally:
                await server.stop()
            return elapsed

        best = float("inf")
        for repeat in range(max(1, repeats)):
            journal_path = Path(root) / f"journal-{repeat}.jsonl"
            journal = ServeJournal(journal_path)
            for spec in specs:
                journal.record(
                    spec.spec_hash(), "accepted", spec=spec.to_dict()
                )
            best = min(best, asyncio.run(_replay(journal_path)))
    return [
        {
            "kind": "micro",
            "id": "service-recovery",
            "backend": "serve",
            "scale": "smoke",
            "params": {
                "jobs": jobs,
                "trials": trials,
                "horizon": horizon,
                "seed": seed,
            },
            "wall_time_s": best,
            "slots_per_second": jobs * trials * horizon / best,
            "replay_s": best,
            "jobs_per_second": jobs / best,
        }
    ]


def run_fused_sweep_suite(
    seed: int = 20210219, repeats: int = 3
) -> List[Dict[str, object]]:
    """Time fused vs per-point dispatch of a 64-point CJZ sweep grid.

    The grid is 16 seeds × 4 jamming fractions of a small-trial CJZ study —
    the regime fusion targets, where per-point fixed costs (probe/driver
    construction, pool seeding, the slot loop's Python overhead) dominate
    the simulation itself.  Both paths run with ``store=None`` on the
    pinned numpy lockstep backend; the suite *asserts* that the fused rows
    equal the per-point rows (timing fields aside) before reporting, so a
    speedup can never be bought with drift.  One ``micro`` record,
    ``id="sweep-fused-grid"``, carrying ``fused_speedup`` — a same-machine
    wall-time ratio like the other normalized metrics; older baselines
    without the id compare clean.
    """
    from .spec import StudySpec, StudyPlan, Sweep, sweep_rows

    base = StudySpec.from_dict(
        {
            "protocol": {
                "kind": "cjz",
                "params": {"g": {"kind": "constant", "value": 4.0}},
            },
            "adversary": {
                "kind": "composed",
                "arrivals": {"kind": "batch", "params": {"count": 12}},
                "jamming": {
                    "kind": "random-fraction",
                    "params": {"fraction": 0.0},
                },
            },
            "horizon": 192,
            "trials": 2,
            "seed": seed,
            "backend": "lockstep",
        }
    )
    sweep = Sweep(
        base,
        {
            "adversary.jamming.params.fraction": [0.0, 0.1, 0.2, 0.3],
            "seed": [seed + index for index in range(16)],
        },
    )

    def _run(fuse: bool) -> Tuple[float, List[Dict[str, object]]]:
        best, rows = float("inf"), None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            results = StudyPlan.from_sweep(sweep).run(fuse=fuse)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best, rows = elapsed, sweep_rows(results)
        return best, rows

    fused_s, fused_rows = _run(True)
    serial_s, serial_rows = _run(False)
    timing_fields = {
        "mean_wall_time_s",
        "mean_slots_per_s",
        "dispatch_seconds",
        "run_seconds",
    }

    def _strip(rows):
        return [
            {k: v for k, v in row.items() if k not in timing_fields}
            for row in rows
        ]

    if _strip(fused_rows) != _strip(serial_rows):
        raise ConfigurationError(
            "fused sweep rows diverged from per-point dispatch; "
            "refusing to report a speedup over wrong results"
        )
    points = sweep.size
    return [
        {
            "kind": "micro",
            "id": "sweep-fused-grid",
            "backend": "lockstep",
            "scale": "smoke",
            "params": {
                "points": points,
                "trials": base.trials,
                "horizon": base.horizon,
                "seed": seed,
            },
            "wall_time_s": fused_s,
            "slots_per_second": points * base.trials * base.horizon / fused_s,
            "serial_wall_time_s": serial_s,
            "fused_speedup": serial_s / fused_s,
        }
    ]


def collect_bench(
    scale: str = "smoke",
    seed: int = 20210219,
    backends: Optional[Sequence[str]] = None,
    include_experiments: bool = True,
    repeats: int = 3,
) -> Dict[str, object]:
    """Run the full suite and assemble the schema-versioned document."""
    benchmarks = run_micro_suite(
        scale=scale, seed=seed, backends=backends, repeats=repeats
    )
    if backends is None:
        # The service round trip and the fused-dispatch grid are
        # backend-independent; a --backends restriction means "time these
        # kernels", so they are skipped there.
        benchmarks.extend(run_service_suite(seed=seed, repeats=repeats))
        benchmarks.extend(run_recovery_suite(seed=seed, repeats=repeats))
        benchmarks.extend(run_fused_sweep_suite(seed=seed, repeats=repeats))
    if include_experiments:
        benchmarks.extend(run_experiment_suite(seed=seed))
    return {
        "schema_version": SCHEMA_VERSION,
        "created_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "machine": machine_info(),
        "scale": scale,
        "seed": seed,
        "benchmarks": benchmarks,
    }


def default_bench_path(directory: str | Path = ".") -> Path:
    """``BENCH_<YYYY-MM-DD>.json`` in ``directory``."""
    stamp = datetime.date.today().isoformat()
    return Path(directory) / f"BENCH_{stamp}.json"


def write_bench(data: Dict[str, object], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")
    return path


def load_bench(path: str | Path) -> Dict[str, object]:
    data = json.loads(Path(path).read_text())
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigurationError(
            f"bench file {path} has schema_version={version!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    return data


def compare_bench(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float = 0.2,
) -> List[Dict[str, object]]:
    """Regressions of ``current`` against ``baseline`` beyond ``threshold``.

    Micro records are compared on their machine-normalized speedups and on
    their per-slot memory profile (peak and retained bytes — object sizes
    are stable across 64-bit machines, so memory gates cross-machine);
    absolute wall times are additionally compared when both files were
    produced on the same machine.  Experiment records flag verdict flips and
    (same machine only) wall-time regressions.  Returns one dict per
    regression; an empty list means the gate passes.  Metrics absent from
    either file (e.g. memory fields against a pre-columnar baseline, or
    ``compile_time_s`` and the ``lockstep-jit`` records against a pre-JIT
    baseline) are skipped, never treated as regressions.
    """
    same_machine = baseline.get("machine") == current.get("machine")
    baseline_map = _record_map(baseline)
    current_map = _record_map(current)
    regressions: List[Dict[str, object]] = []
    # A benchmark that disappears must not pass the gate vacuously.
    for key in baseline_map:
        if key not in current_map:
            regressions.append(_regression(key, "missing_benchmark", "present", "absent"))
    for key, record in current_map.items():
        old = baseline_map.get(key)
        if old is None:
            continue
        kind = key[0]
        if kind == "micro":
            for metric in (
                "speedup_vs_reference",
                "speedup_vs_vectorized",
                "fused_speedup",
            ):
                if metric in record and metric in old:
                    before, after = float(old[metric]), float(record[metric])
                    if after < before * (1.0 - threshold):
                        regressions.append(
                            _regression(key, metric, before, after)
                        )
            for metric in (
                "peak_bytes_per_slot",
                "result_bytes_per_slot",
                "streaming_result_bytes_per_slot",
            ):
                if metric in record and metric in old:
                    before, after = float(old[metric]), float(record[metric])
                    # More bytes is worse; the one-int64-per-slot floor
                    # absorbs noise on near-zero baselines (a streamed study
                    # retains ~0 bytes).
                    if after > before * (1.0 + threshold) and after - before > 8:
                        regressions.append(
                            _regression(key, metric, before, after)
                        )
        if same_machine and "wall_time_s" in record and "wall_time_s" in old:
            before, after = float(old["wall_time_s"]), float(record["wall_time_s"])
            if after > before * (1.0 + threshold):
                regressions.append(_regression(key, "wall_time_s", before, after))
        if kind == "experiment":
            before_ok = old.get("consistent_with_paper")
            after_ok = record.get("consistent_with_paper")
            if before_ok is True and after_ok is False:
                regressions.append(
                    _regression(key, "consistent_with_paper", True, False)
                )
    return regressions


def _record_map(data: Dict[str, object]) -> Dict[tuple, Dict[str, object]]:
    # Scale is part of the key: speedups at different study sizes are not
    # comparable (amortization scales with trial count).
    return {
        (
            record["kind"],
            record["id"],
            record.get("backend", ""),
            record.get("scale", ""),
        ): record
        for record in data.get("benchmarks", [])
    }


def _regression(key: tuple, metric: str, before, after) -> Dict[str, object]:
    kind, identifier, backend, _scale = key
    return {
        "kind": kind,
        "id": identifier,
        "backend": backend,
        "metric": metric,
        "baseline": before,
        "current": after,
    }


def render_comparison(regressions: List[Dict[str, object]]) -> str:
    """Human-readable regression report (empty-list case included)."""
    if not regressions:
        return "bench comparison: no regressions beyond threshold"
    lines = [f"bench comparison: {len(regressions)} regression(s) detected"]
    for item in regressions:
        before, after = item["baseline"], item["current"]
        if isinstance(before, float):
            delta = f"{before:.3g} -> {after:.3g}"
        else:
            delta = f"{before} -> {after}"
        lines.append(
            f"  {item['kind']}/{item['id']} [{item['backend']}] "
            f"{item['metric']}: {delta}"
        )
    return "\n".join(lines)
