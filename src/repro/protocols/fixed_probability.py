"""Non-adaptive (pre-defined probability sequence) protocols — Theorem 4.2 targets.

A protocol is *non-adaptive* in the sense of Theorem 4.2 if, before hearing any
success, it broadcasts in its ``i``-th slot with a pre-defined probability
``a_i`` that does not depend on its own past broadcast decisions or on any
feedback.  The theorem shows such protocols cannot achieve the optimal
trade-off once jamming is present; experiment E7 demonstrates this empirically
against :class:`~repro.adversary.lower_bound.NonAdaptiveKillerAdversary`.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from ..errors import ConfigurationError
from ..types import Feedback
from .base import Protocol

__all__ = ["FixedProbabilityProtocol", "LogUniformFixedProtocol"]


class FixedProbabilityProtocol(Protocol):
    """Broadcast with probability ``sequence(i)`` in the ``i``-th slot since arrival."""

    name = "fixed-probability"
    vector_eligible = True

    def __init__(self, sequence: Callable[[int], float], label: Optional[str] = None) -> None:
        self._sequence = sequence
        self._rng: Optional[np.random.Generator] = None
        self._arrival_slot = 0
        if label:
            self.name = label

    def on_arrival(self, slot: int, rng: np.random.Generator) -> None:
        self._rng = rng
        self._arrival_slot = slot

    def probability(self, i: int) -> float:
        """The pre-defined probability for the node's ``i``-th slot (1-based)."""
        if i < 1:
            raise ConfigurationError("slot index must be >= 1")
        p = float(self._sequence(i))
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"sequence produced invalid probability {p}")
        return p

    def wants_to_broadcast(self, slot: int) -> bool:
        assert self._rng is not None
        i = slot - self._arrival_slot + 1
        return bool(self._rng.random() < self.probability(i))

    def on_feedback(
        self, slot: int, feedback: Feedback, broadcast: bool, success_was_own: bool
    ) -> None:
        return None

    def broadcast_probability(self, slot: int) -> float:
        return self.probability(slot - self._arrival_slot + 1)


class LogUniformFixedProtocol(FixedProbabilityProtocol):
    """The natural "slow decay" non-adaptive sequence ``a_i = min(1, c·log(i+1)/(i+1))``.

    This is the strongest simple non-adaptive contender: it keeps the sending
    probability as high as the arrival budget allows.  Theorem 4.2 says even
    this cannot reach the adaptive trade-off under jamming.
    """

    name = "log-uniform-fixed"
    spec_kind = "log-uniform-fixed"

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ConfigurationError("scale must be positive")

        def _sequence(i: int) -> float:
            return min(1.0, scale * math.log2(i + 1) / (i + 1))

        super().__init__(_sequence, label=self.name)
        self._scale = scale

    def spec_params(self) -> dict:
        return {"scale": self._scale}
