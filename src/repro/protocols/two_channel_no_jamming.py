"""A two-virtual-channel algorithm in the spirit of Bender et al. (STOC '20).

Bender, Kopelowitz, Kuszmaul and Pettie showed constant throughput is possible
without collision detection *when there is no jamming*.  Their algorithm (like
the paper's) synchronizes nodes through successes on a control channel and
then runs batched backoff on a data channel.  This module implements a
simplified version of that framework: it is structurally the paper's algorithm
with the jamming-oblivious choice ``f ≡ O(1)`` — i.e. the ``backoff``
subroutine sends a constant number of times per stage instead of
``Θ(log t / log² g)`` times.

It serves two purposes in the reproduction:

* experiment E4 checks it (and the paper's algorithm) achieve constant
  throughput without jamming;
* experiments E1/E3 show that, unlike the paper's algorithm, it degrades
  beyond the optimal trade-off once jamming appears, motivating the
  jamming-aware choice of ``f``.
"""

from __future__ import annotations

from ..core.parameters import AlgorithmParameters
from ..core.protocol import ChenJiangZhengProtocol
from ..functions import RateFunction

__all__ = ["TwoChannelNoJamming"]


def _constant_f(value: float = 2.0) -> RateFunction:
    return RateFunction(f"f(x)={value:g}", lambda x: value)


class TwoChannelNoJamming(ChenJiangZhengProtocol):
    """The paper's framework instantiated with a constant per-stage send budget.

    Structurally identical to :class:`~repro.core.protocol.ChenJiangZhengProtocol`
    but with ``f`` fixed to a small constant, which is the right choice when no
    jamming is expected (Bender et al.'s regime) and a provably sub-optimal
    choice once a constant fraction of slots can be jammed.
    """

    name = "two-channel-no-jamming"
    spec_kind = "two-channel-no-jamming"

    def __init__(self, backoff_sends_per_stage: float = 2.0, c3: float = 4.0) -> None:
        parameters = AlgorithmParameters.from_f(
            f=_constant_f(backoff_sends_per_stage), c3=c3
        )
        super().__init__(parameters)
        self.name = "two-channel-no-jamming"
        self._backoff_sends_per_stage = backoff_sends_per_stage
        self._c3 = c3

    def spec_params(self) -> dict:
        # The inherited implementation serializes AlgorithmParameters via
        # from_g, which does not describe this from_f-based variant; its own
        # constructor arguments are the faithful recipe.
        return {
            "backoff_sends_per_stage": self._backoff_sends_per_stage,
            "c3": self._c3,
        }
