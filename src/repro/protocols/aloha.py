"""Slotted ALOHA baseline: broadcast with a fixed probability every slot."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..types import Feedback
from .base import Protocol

__all__ = ["SlottedAloha"]


class SlottedAloha(Protocol):
    """Broadcast with constant probability ``p`` in every slot while active.

    The simplest random-access protocol.  It is optimal when the (known)
    number of contenders is ``1/p`` and degrades badly otherwise; it serves as
    the naive lower baseline in the comparison experiments.
    """

    name = "slotted-aloha"
    vector_eligible = True
    spec_kind = "slotted-aloha"

    def __init__(self, probability: float = 0.1) -> None:
        if not 0.0 < probability <= 1.0:
            raise ConfigurationError("probability must be in (0, 1]")
        self._p = probability
        self._rng: Optional[np.random.Generator] = None
        self.name = f"slotted-aloha(p={probability:g})"

    def on_arrival(self, slot: int, rng: np.random.Generator) -> None:
        self._rng = rng

    def wants_to_broadcast(self, slot: int) -> bool:
        assert self._rng is not None
        return bool(self._rng.random() < self._p)

    def on_feedback(
        self, slot: int, feedback: Feedback, broadcast: bool, success_was_own: bool
    ) -> None:
        return None

    def broadcast_probability(self, slot: int) -> float:
        return self._p

    def age_probability_vector(self, max_age: int) -> np.ndarray:
        probabilities = np.full(max_age + 1, self._p)
        probabilities[0] = 0.0
        return probabilities

    def spec_params(self) -> dict:
        return {"probability": self._p}
