"""Sawtooth backoff baseline.

Sawtooth backoff (a batched backoff variant from the adversarial-arrival
literature, cf. Bender et al. SPAA '05) repeatedly executes *runs*: a run with
window ``w`` consists of ``log₂ w`` phases in which the node broadcasts with
probabilities ``1/w, 2/w, 4/w, …, 1/2`` (monotonically increasing — the
"sawtooth" ramps up within a run), each phase lasting the corresponding number
of slots.  After an unsuccessful run the window doubles and a new run starts.
The ramp-up inside a run gives the protocol a backon flavour without requiring
collision detection.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import Feedback
from .base import (
    OP_SAWTOOTH,
    CompiledProgramTables,
    LockstepProgram,
    Protocol,
    grow_flat_column,
)

__all__ = ["SawtoothBackoff", "SawtoothLockstepProgram"]


class SawtoothBackoff(Protocol):
    """Repeated doubling runs, each ramping its sending probability up to 1/2."""

    name = "sawtooth-backoff"
    spec_kind = "sawtooth-backoff"

    def __init__(self, initial_window: int = 4, max_window: Optional[int] = None) -> None:
        if initial_window < 2:
            raise ConfigurationError("initial_window must be >= 2")
        if max_window is not None and max_window < initial_window:
            raise ConfigurationError("max_window must be >= initial_window")
        self._initial_window = initial_window
        self._max_window = max_window
        self._rng: Optional[np.random.Generator] = None
        self._window = initial_window
        # Phase-level schedule of the current run: (first_slot, end_slot,
        # probability) per phase — O(log window) entries, never one per slot.
        self._phases: List[Tuple[int, int, float]] = []
        self._cursor = 0
        self._run_start_slot = 0

    def _build_run(self, start_slot: int) -> None:
        """Precompute the run's phases for the current window."""
        self._phases = []
        slot = start_slot
        probability = 1.0 / self._window
        while probability <= 0.5 + 1e-12:
            phase_length = max(1, int(round(1.0 / probability)))
            self._phases.append((slot, slot + phase_length, probability))
            slot += phase_length
            probability *= 2.0
        self._cursor = 0
        self._run_start_slot = start_slot

    def on_arrival(self, slot: int, rng: np.random.Generator) -> None:
        self._rng = rng
        self._window = self._initial_window
        self._build_run(slot)

    def _probability_for(self, slot: int) -> float:
        # Advance the cursor to the phase covering this slot; rebuild the run
        # (doubling the window) when the current run is exhausted.
        while self._cursor < len(self._phases) and self._phases[self._cursor][1] <= slot:
            self._cursor += 1
        if self._cursor >= len(self._phases):
            self._window *= 2
            if self._max_window is not None:
                self._window = min(self._window, self._max_window)
            self._build_run(slot)
        first_slot, _, probability = self._phases[self._cursor]
        if slot < first_slot:
            return 0.0
        return probability

    def wants_to_broadcast(self, slot: int) -> bool:
        assert self._rng is not None
        probability = self._probability_for(slot)
        return bool(self._rng.random() < probability)

    def on_feedback(
        self, slot: int, feedback: Feedback, broadcast: bool, success_was_own: bool
    ) -> None:
        # The run schedule is time-driven; feedback only matters through the
        # simulator removing the node once its own message succeeds.
        return None

    def spec_params(self) -> dict:
        return {
            "initial_window": self._initial_window,
            "max_window": self._max_window,
        }

    def lockstep_program(self) -> Optional[LockstepProgram]:
        if type(self) is not SawtoothBackoff:
            return None
        return SawtoothLockstepProgram(self._initial_window, self._max_window)


class SawtoothLockstepProgram(LockstepProgram):
    """Columnar sawtooth state: one (window, probability, phase-end) triple per node.

    The run/phase structure is advanced arithmetically: a node stepped at its
    current phase's end slot moves to the next phase (probability doubled) or,
    past the run's last phase, starts a new run with a doubled window — the
    same float arithmetic the per-node schedule builder uses, so probabilities
    are bit-identical.  Every active node draws exactly one ``random()``
    double per slot, as the reference ``wants_to_broadcast`` does.
    """

    def __init__(self, initial_window: int, max_window: Optional[int]) -> None:
        self._initial = initial_window
        self._max = max_window
        self._pool = None

    def compiled_tables(self, horizon: int) -> CompiledProgramTables:
        from ..sim import artifacts

        # Memoized process-wide: a pure function of the window parameters.
        key = ("sawtooth-tables", self._initial, self._max, horizon)
        return artifacts.cached_artifact(
            key,
            lambda: CompiledProgramTables.build(
                opcode=OP_SAWTOOTH,
                # [window, phase_end]
                int_state_width=2,
                float_state_width=1,  # [probability]
                prog_i=[self._initial, -1 if self._max is None else self._max],
            ),
        )

    def bind(self, trials: int, capacity: int, pool, horizon: int) -> None:
        self._pool = pool
        rows = trials * capacity
        self._window = np.zeros(rows, dtype=np.int64)
        self._prob = np.zeros(rows, dtype=np.float64)
        self._phase_end = np.zeros(rows, dtype=np.int64)

    def grow(self, trials: int, old_capacity: int, new_capacity: int) -> None:
        args = (trials, old_capacity, new_capacity)
        self._window = grow_flat_column(self._window, *args)
        self._prob = grow_flat_column(self._prob, *args)
        self._phase_end = grow_flat_column(self._phase_end, *args)

    @staticmethod
    def _phase_lengths(probabilities: np.ndarray) -> np.ndarray:
        # max(1, int(round(1.0 / p))) with numpy's banker's rounding —
        # identical to the scalar schedule builder.
        return np.maximum(
            np.int64(1), np.rint(1.0 / probabilities).astype(np.int64)
        )

    def arrive(self, rows: np.ndarray, slot: int) -> None:
        self._window[rows] = self._initial
        probability = 1.0 / self._initial
        self._prob[rows] = probability
        self._phase_end[rows] = slot + max(1, int(round(1.0 / probability)))

    def step(self, rows: np.ndarray, slot: int) -> np.ndarray:
        advancing = slot >= self._phase_end[rows]
        if advancing.any():
            self._advance(rows[advancing], slot)
        uniforms = self._pool.doubles(rows)
        return uniforms < self._prob[rows]

    def _advance(self, rows: np.ndarray, slot: int) -> None:
        doubled = self._prob[rows] * 2.0
        new_run = doubled > 0.5 + 1e-12
        ramping = rows[~new_run]
        if ramping.size:
            probability = doubled[~new_run]
            self._prob[ramping] = probability
            self._phase_end[ramping] = slot + self._phase_lengths(probability)
        restarting = rows[new_run]
        if restarting.size:
            window = self._window[restarting] * 2
            if self._max is not None:
                window = np.minimum(window, np.int64(self._max))
            self._window[restarting] = window
            probability = 1.0 / window
            self._prob[restarting] = probability
            self._phase_end[restarting] = slot + self._phase_lengths(probability)

    def feedback(self, slot, rows, sends, trial_success, own_success) -> None:
        return None
