"""Sawtooth backoff baseline.

Sawtooth backoff (a batched backoff variant from the adversarial-arrival
literature, cf. Bender et al. SPAA '05) repeatedly executes *runs*: a run with
window ``w`` consists of ``log₂ w`` phases in which the node broadcasts with
probabilities ``1/w, 2/w, 4/w, …, 1/2`` (monotonically increasing — the
"sawtooth" ramps up within a run), each phase lasting the corresponding number
of slots.  After an unsuccessful run the window doubles and a new run starts.
The ramp-up inside a run gives the protocol a backon flavour without requiring
collision detection.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import Feedback
from .base import Protocol

__all__ = ["SawtoothBackoff"]


class SawtoothBackoff(Protocol):
    """Repeated doubling runs, each ramping its sending probability up to 1/2."""

    name = "sawtooth-backoff"
    spec_kind = "sawtooth-backoff"

    def __init__(self, initial_window: int = 4, max_window: Optional[int] = None) -> None:
        if initial_window < 2:
            raise ConfigurationError("initial_window must be >= 2")
        if max_window is not None and max_window < initial_window:
            raise ConfigurationError("max_window must be >= initial_window")
        self._initial_window = initial_window
        self._max_window = max_window
        self._rng: Optional[np.random.Generator] = None
        self._window = initial_window
        self._schedule: List[Tuple[int, float]] = []
        self._cursor = 0
        self._run_start_slot = 0

    def _build_run(self, start_slot: int) -> None:
        """Precompute (slot, probability) pairs for one run with the current window."""
        self._schedule = []
        slot = start_slot
        probability = 1.0 / self._window
        while probability <= 0.5 + 1e-12:
            phase_length = max(1, int(round(1.0 / probability)))
            for _ in range(phase_length):
                self._schedule.append((slot, probability))
                slot += 1
            probability *= 2.0
        self._cursor = 0
        self._run_start_slot = start_slot

    def on_arrival(self, slot: int, rng: np.random.Generator) -> None:
        self._rng = rng
        self._window = self._initial_window
        self._build_run(slot)

    def _probability_for(self, slot: int) -> float:
        # Advance the cursor to the entry for this slot; rebuild the run
        # (doubling the window) when the current run is exhausted.
        while self._cursor < len(self._schedule) and self._schedule[self._cursor][0] < slot:
            self._cursor += 1
        if self._cursor >= len(self._schedule):
            self._window *= 2
            if self._max_window is not None:
                self._window = min(self._window, self._max_window)
            self._build_run(slot)
        scheduled_slot, probability = self._schedule[self._cursor]
        if scheduled_slot != slot:
            return 0.0
        return probability

    def wants_to_broadcast(self, slot: int) -> bool:
        assert self._rng is not None
        probability = self._probability_for(slot)
        return bool(self._rng.random() < probability)

    def on_feedback(
        self, slot: int, feedback: Feedback, broadcast: bool, success_was_own: bool
    ) -> None:
        # The run schedule is time-driven; feedback only matters through the
        # simulator removing the node once its own message succeeds.
        return None

    def spec_params(self) -> dict:
        return {
            "initial_window": self._initial_window,
            "max_window": self._max_window,
        }
