"""Polynomial backoff baseline.

Instead of doubling the contention window after every failure, polynomial
backoff grows it polynomially: after the ``k``-th failure the window is
``(k + 1)^degree``.  Hastad, Leighton and Rogoff (STOC '87) showed polynomial
backoff is stable for statistical arrivals where binary exponential backoff is
not; under adversarial arrivals it trades much higher latency for that
stability.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..types import Feedback
from .base import LockstepProgram, Protocol

__all__ = ["PolynomialBackoff"]


class PolynomialBackoff(Protocol):
    """Windowed backoff whose window grows as ``(failures + 1) ** degree``."""

    name = "polynomial-backoff"
    spec_kind = "polynomial-backoff"

    def __init__(self, degree: float = 2.0, initial_window: int = 2) -> None:
        if degree <= 0:
            raise ConfigurationError("degree must be positive")
        if initial_window < 1:
            raise ConfigurationError("initial_window must be >= 1")
        self._degree = degree
        self._initial_window = initial_window
        self._failures = 0
        self._rng: Optional[np.random.Generator] = None
        self._next_attempt_slot = 0

    def _current_window(self) -> int:
        grown = int(round((self._failures + 1) ** self._degree))
        return max(self._initial_window, grown)

    def _schedule_next(self, current_slot: int) -> None:
        assert self._rng is not None
        offset = int(self._rng.integers(0, self._current_window()))
        self._next_attempt_slot = current_slot + offset

    def on_arrival(self, slot: int, rng: np.random.Generator) -> None:
        self._rng = rng
        self._failures = 0
        self._schedule_next(slot)

    def wants_to_broadcast(self, slot: int) -> bool:
        return slot == self._next_attempt_slot

    def on_feedback(
        self, slot: int, feedback: Feedback, broadcast: bool, success_was_own: bool
    ) -> None:
        if success_was_own:
            return
        if broadcast and feedback is not Feedback.SUCCESS:
            self._failures += 1
            self._schedule_next(slot + 1)
        elif not broadcast and slot >= self._next_attempt_slot:
            self._schedule_next(slot + 1)

    def spec_params(self) -> dict:
        return {"degree": self._degree, "initial_window": self._initial_window}

    def lockstep_program(self) -> Optional[LockstepProgram]:
        if type(self) is not PolynomialBackoff:
            return None
        from .binary_exponential import WindowedBackoffLockstepProgram

        return WindowedBackoffLockstepProgram(
            initial_window=self._initial_window, degree=self._degree
        )
