"""Contention-resolution protocols.

This package contains the protocol interface plus all baseline algorithms the
paper discusses or compares against.  The paper's own algorithm lives in
:mod:`repro.core`.
"""

from .base import Protocol, ProtocolFactory, make_factory
from .binary_exponential import (
    BinaryExponentialBackoff,
    ProbabilityBackoff,
    WindowedBinaryExponentialBackoff,
)
from .polynomial import PolynomialBackoff
from .sawtooth import SawtoothBackoff
from .fixed_probability import FixedProbabilityProtocol, LogUniformFixedProtocol
from .aloha import SlottedAloha
from .collision_detection import BackonBackoffCD

__all__ = [
    "Protocol",
    "ProtocolFactory",
    "make_factory",
    "BinaryExponentialBackoff",
    "WindowedBinaryExponentialBackoff",
    "ProbabilityBackoff",
    "PolynomialBackoff",
    "SawtoothBackoff",
    "FixedProbabilityProtocol",
    "LogUniformFixedProtocol",
    "SlottedAloha",
    "BackonBackoffCD",
    "TwoChannelNoJamming",
]


def __getattr__(name: str):
    # TwoChannelNoJamming subclasses the core protocol, which itself depends on
    # this package's ``base`` module; importing it lazily avoids the circular
    # import while keeping ``from repro.protocols import TwoChannelNoJamming``
    # working.
    if name == "TwoChannelNoJamming":
        from .two_channel_no_jamming import TwoChannelNoJamming

        return TwoChannelNoJamming
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
