"""Reference baseline that exploits collision detection (backon/backoff).

The paper's motivation contrasts its setting with the collision-detection
regime, where backoff/backon algorithms achieve constant throughput even under
constant-fraction jamming (Bender et al. 2018, Chang–Jin–Pettie 2019).  This
module implements a simple multiplicative-weights style backon/backoff
protocol in that spirit:

* each node maintains a personal sending probability ``p``;
* on hearing a **collision** it halves ``p`` (back off — too much contention);
* on hearing **silence** it multiplies ``p`` by a gentle factor (back on — too
  little contention);
* on hearing a success it leaves ``p`` unchanged (the contention estimate was
  right).

This protocol is only meaningful on a channel configured with
:class:`~repro.channel.feedback.WithCollisionDetection`; on the paper's channel
silence and collision are reported identically and the backon rule never
fires, so the protocol degenerates to pure backoff — which is precisely the
qualitative gap the paper studies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..types import Feedback
from .base import Protocol

__all__ = ["BackonBackoffCD"]


class BackonBackoffCD(Protocol):
    """Multiplicative backon/backoff driven by silence-vs-collision feedback."""

    name = "backon-backoff-cd"
    spec_kind = "backon-backoff-cd"

    def __init__(
        self,
        initial_probability: float = 0.5,
        backoff_factor: float = 0.5,
        backon_factor: float = 1.2,
        min_probability: float = 1e-6,
        max_probability: float = 1.0,
    ) -> None:
        if not 0.0 < initial_probability <= 1.0:
            raise ConfigurationError("initial_probability must be in (0, 1]")
        if not 0.0 < backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be in (0, 1)")
        if backon_factor <= 1.0:
            raise ConfigurationError("backon_factor must exceed 1")
        self._initial = initial_probability
        self._backoff = backoff_factor
        self._backon = backon_factor
        self._min_p = min_probability
        self._max_p = max_probability
        self._p = initial_probability
        self._rng: Optional[np.random.Generator] = None

    @property
    def probability(self) -> float:
        return self._p

    def on_arrival(self, slot: int, rng: np.random.Generator) -> None:
        self._rng = rng
        self._p = self._initial

    def wants_to_broadcast(self, slot: int) -> bool:
        assert self._rng is not None
        return bool(self._rng.random() < self._p)

    def on_feedback(
        self, slot: int, feedback: Feedback, broadcast: bool, success_was_own: bool
    ) -> None:
        if success_was_own:
            return
        if feedback is Feedback.COLLISION:
            self._p = max(self._min_p, self._p * self._backoff)
        elif feedback is Feedback.SILENCE:
            self._p = min(self._max_p, self._p * self._backon)
        elif feedback is Feedback.NO_SUCCESS:
            # Without collision detection the protocol cannot tell which way
            # to adjust; it conservatively backs off (the classical choice).
            self._p = max(self._min_p, self._p * self._backoff)
        # SUCCESS (someone else's): contention estimate is adequate; keep p.

    def spec_params(self) -> dict:
        return {
            "initial_probability": self._initial,
            "backoff_factor": self._backoff,
            "backon_factor": self._backon,
            "min_probability": self._min_p,
            "max_probability": self._max_p,
        }
