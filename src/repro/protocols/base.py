"""Protocol interface.

A *protocol* is the algorithm one node runs from the moment it is injected
until its single message is successfully transmitted.  The simulator drives a
protocol instance through three hooks per slot:

1. :meth:`Protocol.on_arrival` — called once, at the beginning of the node's
   arrival slot, before the first broadcast decision.
2. :meth:`Protocol.wants_to_broadcast` — called at the beginning of every slot
   the node is active; returns whether the node broadcasts its message.
3. :meth:`Protocol.on_feedback` — called at the end of every slot the node is
   active, carrying the channel feedback every listener receives.  Per the
   model, nodes without collision detection only learn "success" (including
   the successful sender's identity via ``success_was_own``) or "no success".

A node halts automatically when its own message goes through; the simulator
stops calling its hooks afterwards.

Population-level API
--------------------

Protocols may additionally expose their *marginal broadcast probability*:

* :meth:`Protocol.broadcast_probability` reports, given the instance's current
  state, the probability that the node broadcasts in a global slot.  It is a
  diagnostic/analysis hook and is meaningful for every protocol that can
  compute it (including adaptive ones, where it is conditional on the current
  state).
* :attr:`Protocol.vector_eligible` declares the much stronger contract the
  vectorized simulation backend relies on: the node's broadcast decisions are
  independent Bernoulli draws whose probability depends *only* on the node's
  age (slots since arrival), all channel feedback is ignored until the node's
  own success, and exactly one ``rng.random()`` uniform is consumed per active
  slot.  Protocols satisfying it opt in by setting the flag and implementing
  :meth:`Protocol.broadcast_probability`; the vectorized kernel then
  reproduces the per-node reference execution bit for bit from batched draws.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..types import Feedback

__all__ = [
    "CompiledProgramTables",
    "LockstepProgram",
    "OP_CJZ",
    "OP_SAWTOOTH",
    "OP_WINDOWED",
    "Protocol",
    "ProtocolFactory",
    "grow_flat_column",
    "make_factory",
]

#: Opcodes of the compiled lockstep interpreter
#: (:mod:`repro.sim.backends.compiled`).  Each names one protocol family the
#: fused slot loop knows how to advance; a program's
#: :meth:`LockstepProgram.compiled_tables` selects the family and supplies
#: its numeric parameters.
OP_CJZ = 1
OP_WINDOWED = 2
OP_SAWTOOTH = 3

#: Sentinel local index larger than any horizon, used by lockstep programs
#: for "no planned send" markers.
LOCKSTEP_SENTINEL = np.int64(1 << 62)


def grow_flat_column(
    column: np.ndarray,
    trials: int,
    old_capacity: int,
    new_capacity: int,
    fill=0,
) -> np.ndarray:
    """Re-layout a flat ``trials × capacity`` column for a larger capacity.

    Lockstep state columns address node ``n`` of trial ``t`` at flat row
    ``t * capacity + n``; growing the per-trial capacity therefore moves
    every trial's block.  Returns the new flat column with old values in
    place and ``fill`` elsewhere.
    """
    shape = (trials, new_capacity) + column.shape[1:]
    grown = np.full(shape, fill, dtype=column.dtype)
    grown[:, :old_capacity] = column.reshape(
        (trials, old_capacity) + column.shape[1:]
    )
    return grown.reshape((trials * new_capacity,) + column.shape[1:])


def lockstep_bounded_offsets(pool, rows: np.ndarray, ranges: np.ndarray) -> np.ndarray:
    """``Generator.integers(0, ranges[i] + 1)`` per row, mixed-width.

    Ranges below 32 bits go through the pool's vectorized buffered-Lemire
    path; the (practically unreachable) wider ranges replay numpy's 64-bit
    paths row by row.  Rows with range 0 consume nothing.
    """
    ranges = np.asarray(ranges, dtype=np.uint64)
    offsets = np.zeros(len(rows), dtype=np.int64)
    narrow = ranges < np.uint64(0xFFFFFFFF)
    if narrow.any():
        offsets[narrow] = pool.bounded_u32(rows[narrow], ranges[narrow]).astype(
            np.int64
        )
    if not narrow.all():
        for position in np.nonzero(~narrow)[0]:
            offsets[position] = pool.bounded_scalar(
                int(rows[position]), int(ranges[position])
            )
    return offsets


@dataclass(frozen=True)
class CompiledProgramTables:
    """Numeric lowering of one :class:`LockstepProgram` for the fused slot loop.

    The compiled study backend runs a single protocol-agnostic interpreter;
    this record is everything it needs to execute one protocol family:

    * ``opcode`` — which family (:data:`OP_CJZ`, :data:`OP_WINDOWED`,
      :data:`OP_SAWTOOTH`) the interpreter switches on;
    * ``int_state_width`` / ``float_state_width`` — per-node state columns
      the interpreter allocates (layout is fixed per opcode);
    * ``plan_width`` — width of the per-node send-plan matrix (CJZ backoff
      stages; 0 when the family keeps no plan);
    * ``prog_i`` / ``prog_f`` — scalar int64/float64 parameters;
    * ``stage_counts`` — per-stage send counts of ``(f/a)``-backoff
      (int64, empty when unused);
    * ``table_ctrl`` / ``table_data`` — ``h``-batch probability tables
      indexed by local slot (float64, empty when unused).

    All arrays are plain numpy so the record crosses the numba boundary
    unchanged; the tables are built with the same scalar calls the columnar
    program makes, keeping compiled comparisons float-identical.
    """

    opcode: int
    int_state_width: int
    float_state_width: int
    plan_width: int
    prog_i: np.ndarray
    prog_f: np.ndarray
    stage_counts: np.ndarray
    table_ctrl: np.ndarray
    table_data: np.ndarray

    @classmethod
    def build(
        cls,
        opcode: int,
        int_state_width: int,
        float_state_width: int,
        prog_i=(),
        prog_f=(),
        plan_width: int = 0,
        stage_counts=(),
        table_ctrl=(),
        table_data=(),
    ) -> "CompiledProgramTables":
        return cls(
            opcode=opcode,
            int_state_width=int_state_width,
            float_state_width=float_state_width,
            plan_width=plan_width,
            prog_i=np.asarray(prog_i, dtype=np.int64),
            prog_f=np.asarray(prog_f, dtype=np.float64),
            stage_counts=np.asarray(stage_counts, dtype=np.int64),
            table_ctrl=np.asarray(table_ctrl, dtype=np.float64),
            table_data=np.asarray(table_data, dtype=np.float64),
        )


class LockstepProgram(abc.ABC):
    """Columnar population-state executor of one protocol for the lockstep kernel.

    A program advances *every node of every trial* through one slot with
    array operations, mirroring the per-node reference execution exactly:

    * node state lives in flat numpy columns where node ``n`` of trial ``t``
      occupies row ``t * capacity + n``;
    * all randomness is drawn from the kernel's
      :class:`~repro.rng.NodeStreamPool`, whose row ``r`` replays node
      ``r``'s ``default_rng`` stream bit for bit — a program must consume
      draws in exactly the order and kind (``random()`` doubles, bounded
      integer batches) the per-node protocol instance would;
    * feedback is delivered once per slot with the same information the
      reference loop dispatches (did my trial's slot succeed, was the
      success my own, did I broadcast).

    Programs are created by :meth:`Protocol.lockstep_program` on a probe
    instance, which supplies the protocol parameters; they must not retain
    the probe's generator (probes never own one).
    """

    def compiled_tables(self, horizon: int) -> Optional[CompiledProgramTables]:
        """Numeric lowering for the fused compiled interpreter, or ``None``.

        Returning a :class:`CompiledProgramTables` opts the program into the
        ``lockstep-jit`` study backend, whose single interpreter advances the
        population from flat int64/float64 state instead of per-slot numpy
        dispatch.  The default — and the safe answer for any program whose
        semantics the interpreter's opcode families do not cover exactly —
        is ``None``, which keeps the study on the numpy lockstep kernel.
        """
        return None

    @abc.abstractmethod
    def bind(self, trials: int, capacity: int, pool, horizon: int) -> None:
        """Allocate state columns for ``trials × capacity`` rows."""

    @abc.abstractmethod
    def grow(self, trials: int, old_capacity: int, new_capacity: int) -> None:
        """Re-layout every state column for a larger per-trial capacity."""

    @abc.abstractmethod
    def arrive(self, rows: np.ndarray, slot: int) -> None:
        """Initialize the state of nodes arriving at ``slot`` (rows are seeded)."""

    @abc.abstractmethod
    def step(self, rows: np.ndarray, slot: int) -> np.ndarray:
        """Broadcast decisions for the active ``rows`` in ``slot``.

        Returns a bool array aligned with ``rows``.  Must consume exactly
        the randomness the per-node ``wants_to_broadcast`` calls would.
        """

    @abc.abstractmethod
    def feedback(
        self,
        slot: int,
        rows: np.ndarray,
        sends: np.ndarray,
        trial_success: np.ndarray,
        own_success: np.ndarray,
    ) -> None:
        """Deliver the slot's feedback to the active ``rows``.

        ``sends`` is the step's broadcast mask, ``trial_success`` marks rows
        whose trial's slot was a success and ``own_success`` marks the
        winners themselves (all aligned with ``rows``).  Mirrors
        ``Protocol.on_feedback`` under the no-collision-detection channel.
        """


class Protocol(abc.ABC):
    """Per-node contention-resolution algorithm."""

    #: human-readable protocol name used in reports
    name: str = "protocol"

    #: registry key of this protocol in :data:`repro.spec.PROTOCOLS`, or
    #: ``None`` for protocols that cannot be described declaratively (e.g.
    #: ones constructed around arbitrary callables).
    spec_kind: Optional[str] = None

    #: True only when broadcast decisions are independent Bernoulli draws whose
    #: probability is a pure function of the node's age, feedback is ignored,
    #: and exactly one uniform is drawn per active slot (see module docstring).
    #: Opting in makes the protocol runnable on the vectorized slot kernel.
    vector_eligible: bool = False

    @abc.abstractmethod
    def on_arrival(self, slot: int, rng: np.random.Generator) -> None:
        """Initialize the node's state; ``slot`` is the global arrival slot."""

    @abc.abstractmethod
    def wants_to_broadcast(self, slot: int) -> bool:
        """Return ``True`` if the node broadcasts its message in ``slot``."""

    @abc.abstractmethod
    def on_feedback(
        self,
        slot: int,
        feedback: Feedback,
        broadcast: bool,
        success_was_own: bool,
    ) -> None:
        """Consume the slot's channel feedback.

        Parameters
        ----------
        slot:
            Global slot index that just ended.
        feedback:
            Channel feedback heard by every listener.
        broadcast:
            Whether this node itself broadcast in the slot.
        success_was_own:
            Whether the success (if any) was this node's own message.  When
            true the node has left the system; implementations may ignore the
            call.
        """

    def broadcast_probability(self, slot: int) -> Optional[float]:
        """Marginal probability of broadcasting in global ``slot``.

        The answer is conditional on the instance's current state (for
        adaptive protocols it changes as feedback arrives).  Returns ``None``
        when the protocol cannot compute it — the default.
        """
        return None

    def lockstep_program(self) -> Optional["LockstepProgram"]:
        """Columnar state program for the lockstep study kernel, or ``None``.

        Feedback-driven protocols that can express their per-node state as
        numpy columns (phases, anchors, windows as int/float arrays) return
        a fresh :class:`LockstepProgram` bound to this instance's
        parameters; the default — and the safe answer for any subclass that
        changes behaviour — is ``None``, which keeps the protocol on the
        per-trial reference path.
        """
        return None

    def age_probability_vector(self, max_age: int) -> Optional[np.ndarray]:
        """Vector ``p`` with ``p[k]`` = broadcast probability in the node's
        ``k``-th active slot (1-based; index 0 unused).

        Only meaningful for :attr:`vector_eligible` protocols, whose
        probability is a pure function of age.  Callers must have invoked
        :meth:`on_arrival` with arrival slot 1 first, so that global slot
        indices coincide with ages.  Returns ``None`` for ineligible
        protocols.  Subclasses with a closed form should override this to
        avoid the per-age Python loop.
        """
        if not self.vector_eligible:
            return None
        probabilities = np.zeros(max_age + 1, dtype=float)
        for age in range(1, max_age + 1):
            p = self.broadcast_probability(age)
            if p is None:
                return None
            probabilities[age] = p
        return probabilities

    # ------------------------------------------------------------ spec layer

    def spec_params(self) -> dict:
        """JSON-serializable constructor parameters of this instance.

        Together with :attr:`spec_kind` this must reconstruct an instance
        that behaves identically (same RNG consumption, same decisions) —
        the round-trip contract ``from_spec(to_spec())`` relies on it.
        """
        return {}

    def to_spec(self):
        """The declarative :class:`~repro.spec.ProtocolSpec` for this instance."""
        from ..spec.protocol import ProtocolSpec

        if self.spec_kind is None:
            from ..errors import SpecError

            raise SpecError(
                f"protocol {self.name!r} has no registered spec kind and "
                "cannot be serialized"
            )
        return ProtocolSpec(kind=self.spec_kind, params=self.spec_params())

    @staticmethod
    def from_spec(spec) -> "Protocol":
        """Build a fresh instance from a :class:`~repro.spec.ProtocolSpec`.

        Inverse of :meth:`to_spec` up to instance identity: the result
        behaves identically (same constructor parameters, same RNG
        consumption).  Accepts a spec object or its ``to_dict`` mapping.
        """
        from ..spec.protocol import ProtocolSpec

        if not isinstance(spec, ProtocolSpec):
            spec = ProtocolSpec.from_dict(spec)
        return spec.build()()


ProtocolFactory = Callable[[], Protocol]


def make_factory(cls: type, /, *args, **kwargs) -> ProtocolFactory:
    """Build a factory producing fresh protocol instances for each new node."""

    def _factory() -> Protocol:
        return cls(*args, **kwargs)

    _factory.protocol_name = getattr(cls, "name", cls.__name__)  # type: ignore[attr-defined]
    return _factory
