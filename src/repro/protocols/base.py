"""Protocol interface.

A *protocol* is the algorithm one node runs from the moment it is injected
until its single message is successfully transmitted.  The simulator drives a
protocol instance through three hooks per slot:

1. :meth:`Protocol.on_arrival` — called once, at the beginning of the node's
   arrival slot, before the first broadcast decision.
2. :meth:`Protocol.wants_to_broadcast` — called at the beginning of every slot
   the node is active; returns whether the node broadcasts its message.
3. :meth:`Protocol.on_feedback` — called at the end of every slot the node is
   active, carrying the channel feedback every listener receives.  Per the
   model, nodes without collision detection only learn "success" (including
   the successful sender's identity via ``success_was_own``) or "no success".

A node halts automatically when its own message goes through; the simulator
stops calling its hooks afterwards.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from ..types import Feedback

__all__ = ["Protocol", "ProtocolFactory", "make_factory"]


class Protocol(abc.ABC):
    """Per-node contention-resolution algorithm."""

    #: human-readable protocol name used in reports
    name: str = "protocol"

    @abc.abstractmethod
    def on_arrival(self, slot: int, rng: np.random.Generator) -> None:
        """Initialize the node's state; ``slot`` is the global arrival slot."""

    @abc.abstractmethod
    def wants_to_broadcast(self, slot: int) -> bool:
        """Return ``True`` if the node broadcasts its message in ``slot``."""

    @abc.abstractmethod
    def on_feedback(
        self,
        slot: int,
        feedback: Feedback,
        broadcast: bool,
        success_was_own: bool,
    ) -> None:
        """Consume the slot's channel feedback.

        Parameters
        ----------
        slot:
            Global slot index that just ended.
        feedback:
            Channel feedback heard by every listener.
        broadcast:
            Whether this node itself broadcast in the slot.
        success_was_own:
            Whether the success (if any) was this node's own message.  When
            true the node has left the system; implementations may ignore the
            call.
        """


ProtocolFactory = Callable[[], Protocol]


def make_factory(cls: type, /, *args, **kwargs) -> ProtocolFactory:
    """Build a factory producing fresh protocol instances for each new node."""

    def _factory() -> Protocol:
        return cls(*args, **kwargs)

    _factory.protocol_name = getattr(cls, "name", cls.__name__)  # type: ignore[attr-defined]
    return _factory
