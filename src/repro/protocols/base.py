"""Protocol interface.

A *protocol* is the algorithm one node runs from the moment it is injected
until its single message is successfully transmitted.  The simulator drives a
protocol instance through three hooks per slot:

1. :meth:`Protocol.on_arrival` — called once, at the beginning of the node's
   arrival slot, before the first broadcast decision.
2. :meth:`Protocol.wants_to_broadcast` — called at the beginning of every slot
   the node is active; returns whether the node broadcasts its message.
3. :meth:`Protocol.on_feedback` — called at the end of every slot the node is
   active, carrying the channel feedback every listener receives.  Per the
   model, nodes without collision detection only learn "success" (including
   the successful sender's identity via ``success_was_own``) or "no success".

A node halts automatically when its own message goes through; the simulator
stops calling its hooks afterwards.

Population-level API
--------------------

Protocols may additionally expose their *marginal broadcast probability*:

* :meth:`Protocol.broadcast_probability` reports, given the instance's current
  state, the probability that the node broadcasts in a global slot.  It is a
  diagnostic/analysis hook and is meaningful for every protocol that can
  compute it (including adaptive ones, where it is conditional on the current
  state).
* :attr:`Protocol.vector_eligible` declares the much stronger contract the
  vectorized simulation backend relies on: the node's broadcast decisions are
  independent Bernoulli draws whose probability depends *only* on the node's
  age (slots since arrival), all channel feedback is ignored until the node's
  own success, and exactly one ``rng.random()`` uniform is consumed per active
  slot.  Protocols satisfying it opt in by setting the flag and implementing
  :meth:`Protocol.broadcast_probability`; the vectorized kernel then
  reproduces the per-node reference execution bit for bit from batched draws.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

import numpy as np

from ..types import Feedback

__all__ = ["Protocol", "ProtocolFactory", "make_factory"]


class Protocol(abc.ABC):
    """Per-node contention-resolution algorithm."""

    #: human-readable protocol name used in reports
    name: str = "protocol"

    #: registry key of this protocol in :data:`repro.spec.PROTOCOLS`, or
    #: ``None`` for protocols that cannot be described declaratively (e.g.
    #: ones constructed around arbitrary callables).
    spec_kind: Optional[str] = None

    #: True only when broadcast decisions are independent Bernoulli draws whose
    #: probability is a pure function of the node's age, feedback is ignored,
    #: and exactly one uniform is drawn per active slot (see module docstring).
    #: Opting in makes the protocol runnable on the vectorized slot kernel.
    vector_eligible: bool = False

    @abc.abstractmethod
    def on_arrival(self, slot: int, rng: np.random.Generator) -> None:
        """Initialize the node's state; ``slot`` is the global arrival slot."""

    @abc.abstractmethod
    def wants_to_broadcast(self, slot: int) -> bool:
        """Return ``True`` if the node broadcasts its message in ``slot``."""

    @abc.abstractmethod
    def on_feedback(
        self,
        slot: int,
        feedback: Feedback,
        broadcast: bool,
        success_was_own: bool,
    ) -> None:
        """Consume the slot's channel feedback.

        Parameters
        ----------
        slot:
            Global slot index that just ended.
        feedback:
            Channel feedback heard by every listener.
        broadcast:
            Whether this node itself broadcast in the slot.
        success_was_own:
            Whether the success (if any) was this node's own message.  When
            true the node has left the system; implementations may ignore the
            call.
        """

    def broadcast_probability(self, slot: int) -> Optional[float]:
        """Marginal probability of broadcasting in global ``slot``.

        The answer is conditional on the instance's current state (for
        adaptive protocols it changes as feedback arrives).  Returns ``None``
        when the protocol cannot compute it — the default.
        """
        return None

    def age_probability_vector(self, max_age: int) -> Optional[np.ndarray]:
        """Vector ``p`` with ``p[k]`` = broadcast probability in the node's
        ``k``-th active slot (1-based; index 0 unused).

        Only meaningful for :attr:`vector_eligible` protocols, whose
        probability is a pure function of age.  Callers must have invoked
        :meth:`on_arrival` with arrival slot 1 first, so that global slot
        indices coincide with ages.  Returns ``None`` for ineligible
        protocols.  Subclasses with a closed form should override this to
        avoid the per-age Python loop.
        """
        if not self.vector_eligible:
            return None
        probabilities = np.zeros(max_age + 1, dtype=float)
        for age in range(1, max_age + 1):
            p = self.broadcast_probability(age)
            if p is None:
                return None
            probabilities[age] = p
        return probabilities

    # ------------------------------------------------------------ spec layer

    def spec_params(self) -> dict:
        """JSON-serializable constructor parameters of this instance.

        Together with :attr:`spec_kind` this must reconstruct an instance
        that behaves identically (same RNG consumption, same decisions) —
        the round-trip contract ``from_spec(to_spec())`` relies on it.
        """
        return {}

    def to_spec(self):
        """The declarative :class:`~repro.spec.ProtocolSpec` for this instance."""
        from ..spec.protocol import ProtocolSpec

        if self.spec_kind is None:
            from ..errors import SpecError

            raise SpecError(
                f"protocol {self.name!r} has no registered spec kind and "
                "cannot be serialized"
            )
        return ProtocolSpec(kind=self.spec_kind, params=self.spec_params())

    @staticmethod
    def from_spec(spec) -> "Protocol":
        """Build a fresh instance from a :class:`~repro.spec.ProtocolSpec`.

        Inverse of :meth:`to_spec` up to instance identity: the result
        behaves identically (same constructor parameters, same RNG
        consumption).  Accepts a spec object or its ``to_dict`` mapping.
        """
        from ..spec.protocol import ProtocolSpec

        if not isinstance(spec, ProtocolSpec):
            spec = ProtocolSpec.from_dict(spec)
        return spec.build()()


ProtocolFactory = Callable[[], Protocol]


def make_factory(cls: type, /, *args, **kwargs) -> ProtocolFactory:
    """Build a factory producing fresh protocol instances for each new node."""

    def _factory() -> Protocol:
        return cls(*args, **kwargs)

    _factory.protocol_name = getattr(cls, "name", cls.__name__)  # type: ignore[attr-defined]
    return _factory
