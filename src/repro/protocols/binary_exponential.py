"""Binary exponential backoff baselines.

Two classical implementations are provided:

* :class:`WindowedBinaryExponentialBackoff` — the Ethernet-style contention
  window: after each failed attempt the node doubles its window and picks a
  uniformly random slot in the new window for its next attempt.
* :class:`ProbabilityBackoff` — the probability formulation used throughout
  the paper's analysis: in the ``i``-th slot since activation the node
  broadcasts with probability ``min(1, c / i)``; with ``c = 1`` this is
  exactly the ``h_data``-batch of Claim 3.5.1 run individually.

``BinaryExponentialBackoff`` is an alias for the windowed variant, the name
most readers expect.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..types import Feedback
from .base import (
    OP_WINDOWED,
    CompiledProgramTables,
    LockstepProgram,
    Protocol,
    grow_flat_column,
    lockstep_bounded_offsets,
)

__all__ = [
    "WindowedBinaryExponentialBackoff",
    "ProbabilityBackoff",
    "BinaryExponentialBackoff",
    "WindowedBackoffLockstepProgram",
]


class WindowedBinaryExponentialBackoff(Protocol):
    """Ethernet-style binary exponential backoff with a doubling contention window."""

    name = "binary-exponential-backoff"
    spec_kind = "binary-exponential-backoff"

    def __init__(self, initial_window: int = 2, max_window: Optional[int] = None) -> None:
        if initial_window < 1:
            raise ConfigurationError("initial_window must be >= 1")
        if max_window is not None and max_window < initial_window:
            raise ConfigurationError("max_window must be >= initial_window")
        self._initial_window = initial_window
        self._max_window = max_window
        self._rng: Optional[np.random.Generator] = None
        self._window = initial_window
        self._next_attempt_slot = 0
        self._arrival_slot = 0

    def on_arrival(self, slot: int, rng: np.random.Generator) -> None:
        self._rng = rng
        self._arrival_slot = slot
        self._window = self._initial_window
        self._schedule_next(slot)

    def _schedule_next(self, current_slot: int) -> None:
        assert self._rng is not None
        offset = int(self._rng.integers(0, self._window))
        self._next_attempt_slot = current_slot + offset

    def wants_to_broadcast(self, slot: int) -> bool:
        return slot == self._next_attempt_slot

    def on_feedback(
        self, slot: int, feedback: Feedback, broadcast: bool, success_was_own: bool
    ) -> None:
        if success_was_own:
            return
        if broadcast and feedback is not Feedback.SUCCESS:
            # Attempt failed: double the window and reschedule.
            self._window *= 2
            if self._max_window is not None:
                self._window = min(self._window, self._max_window)
            self._schedule_next(slot + 1)
        elif not broadcast and slot >= self._next_attempt_slot:
            # Defensive: if the scheduled attempt slipped past (should not
            # happen in normal operation), reschedule without growing.
            self._schedule_next(slot + 1)

    def broadcast_probability(self, slot: int) -> float:
        # The attempt slot is already realized, so conditional on the current
        # state the decision is deterministic.
        return 1.0 if slot == self._next_attempt_slot else 0.0

    def spec_params(self) -> dict:
        return {
            "initial_window": self._initial_window,
            "max_window": self._max_window,
        }

    def lockstep_program(self) -> Optional[LockstepProgram]:
        if type(self) is not WindowedBinaryExponentialBackoff:
            return None
        return WindowedBackoffLockstepProgram(
            initial_window=self._initial_window, max_window=self._max_window
        )


class WindowedBackoffLockstepProgram(LockstepProgram):
    """Columnar state shared by the windowed backoff family (BEB, polynomial).

    One (window-or-failures, next-attempt) pair per node; the broadcast
    decision is deterministic (``slot == next_attempt``) and randomness is
    consumed only when an attempt is rescheduled — one bounded integer per
    reschedule, exactly as ``_schedule_next`` draws it.

    Binary exponential backoff doubles its window on failure; the polynomial
    variant passes ``degree`` and regrows its window from a failure counter
    instead.
    """

    def __init__(
        self,
        initial_window: int,
        max_window: Optional[int] = None,
        degree: Optional[float] = None,
    ) -> None:
        self._initial = initial_window
        self._max = max_window
        self._degree = degree
        self._pool = None

    def compiled_tables(self, horizon: int) -> CompiledProgramTables:
        from ..sim import artifacts

        # Memoized process-wide: the tables are a pure function of the
        # window parameters (the horizon never shapes them, but it stays in
        # the key so every compiled_tables cache shares one convention).
        key = (
            "windowed-tables",
            self._initial,
            self._max,
            self._degree,
            horizon,
        )
        return artifacts.cached_artifact(
            key,
            lambda: CompiledProgramTables.build(
                opcode=OP_WINDOWED,
                # [window, failures, next_attempt]
                int_state_width=3,
                float_state_width=0,
                prog_i=[
                    self._initial,
                    -1 if self._max is None else self._max,
                    0 if self._degree is None else 1,
                ],
                prog_f=[0.0 if self._degree is None else self._degree],
            ),
        )

    def bind(self, trials: int, capacity: int, pool, horizon: int) -> None:
        self._pool = pool
        rows = trials * capacity
        self._window = np.zeros(rows, dtype=np.int64)
        self._failures = np.zeros(rows, dtype=np.int64)
        self._next_attempt = np.zeros(rows, dtype=np.int64)

    def grow(self, trials: int, old_capacity: int, new_capacity: int) -> None:
        args = (trials, old_capacity, new_capacity)
        self._window = grow_flat_column(self._window, *args)
        self._failures = grow_flat_column(self._failures, *args)
        self._next_attempt = grow_flat_column(self._next_attempt, *args)

    def _grown_windows(self, failures: np.ndarray) -> np.ndarray:
        """Polynomial window ``max(initial, round((failures + 1)**degree))``."""
        grown = np.rint(
            np.power((failures + 1).astype(np.float64), self._degree)
        ).astype(np.int64)
        return np.maximum(np.int64(self._initial), grown)

    def _reschedule(self, rows: np.ndarray, from_slot: int) -> None:
        offsets = lockstep_bounded_offsets(
            self._pool, rows, self._window[rows] - 1
        )
        self._next_attempt[rows] = from_slot + offsets

    def arrive(self, rows: np.ndarray, slot: int) -> None:
        if self._degree is None:
            self._window[rows] = self._initial
        else:
            self._failures[rows] = 0
            self._window[rows] = self._grown_windows(self._failures[rows])
        self._reschedule(rows, slot)

    def step(self, rows: np.ndarray, slot: int) -> np.ndarray:
        return self._next_attempt[rows] == slot

    def feedback(
        self,
        slot: int,
        rows: np.ndarray,
        sends: np.ndarray,
        trial_success: np.ndarray,
        own_success: np.ndarray,
    ) -> None:
        failed = sends & ~trial_success
        if failed.any():
            losers = rows[failed]
            if self._degree is None:
                window = self._window[losers] * 2
                if self._max is not None:
                    window = np.minimum(window, np.int64(self._max))
            else:
                failures = self._failures[losers] + 1
                self._failures[losers] = failures
                window = self._grown_windows(failures)
            self._window[losers] = window
            self._reschedule(losers, slot + 1)
        # Defensive reschedule for a slipped attempt, mirroring on_feedback
        # (unreachable in normal operation, kept for replay fidelity).
        slipped = (~sends) & ~own_success & (slot >= self._next_attempt[rows])
        if slipped.any():
            self._reschedule(rows[slipped], slot + 1)


class ProbabilityBackoff(Protocol):
    """Broadcast with probability ``min(1, scale / i)`` in the ``i``-th slot since arrival.

    With ``scale = 1`` this is the per-node version of the paper's
    ``h_data``-batch; running ``n`` simultaneously-activated instances is
    exactly the process of Claim 3.5.1.
    """

    name = "probability-backoff"
    vector_eligible = True
    spec_kind = "probability-backoff"

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        self._scale = scale
        self._rng: Optional[np.random.Generator] = None
        self._arrival_slot = 0

    def on_arrival(self, slot: int, rng: np.random.Generator) -> None:
        self._rng = rng
        self._arrival_slot = slot

    def _probability(self, slot: int) -> float:
        i = slot - self._arrival_slot + 1
        return min(1.0, self._scale / i)

    def wants_to_broadcast(self, slot: int) -> bool:
        assert self._rng is not None
        return bool(self._rng.random() < self._probability(slot))

    def on_feedback(
        self, slot: int, feedback: Feedback, broadcast: bool, success_was_own: bool
    ) -> None:
        # Non-adaptive in the sense of the paper: the sending probability only
        # depends on the time since arrival, not on the feedback history.
        return None

    def broadcast_probability(self, slot: int) -> float:
        return self._probability(slot)

    def age_probability_vector(self, max_age: int) -> np.ndarray:
        ages = np.arange(max_age + 1, dtype=float)
        ages[0] = 1.0  # avoid division by zero; index 0 is unused
        probabilities = np.minimum(1.0, self._scale / ages)
        probabilities[0] = 0.0
        return probabilities

    def spec_params(self) -> dict:
        return {"scale": self._scale}


BinaryExponentialBackoff = WindowedBinaryExponentialBackoff
