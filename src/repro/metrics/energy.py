"""Energy metric: channel accesses (broadcast attempts) per node.

The contention-resolution literature calls the number of broadcast attempts a
node makes before succeeding its *energy complexity*.  The paper notes that
its algorithm, like Bender et al.'s, uses poly-logarithmically many accesses
per node; experiment E9 measures this empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..sim.results import SimulationResult

__all__ = ["EnergySummary", "summarize_energy"]


@dataclass
class EnergySummary:
    """Summary of per-node broadcast counts over one or more runs."""

    nodes: int
    mean: float
    median: float
    p95: float
    maximum: float
    total_broadcasts: int

    def scaled_by_log2(self, n: int) -> float:
        """Mean accesses divided by log₂²(n) — the poly-log normalization used in E9."""
        if n < 2:
            return float("nan")
        return self.mean / (np.log2(n) ** 2)


def summarize_energy(results: Sequence[SimulationResult]) -> EnergySummary:
    counts: list = []
    for result in results:
        counts.extend(result.broadcast_counts())
    if not counts:
        return EnergySummary(
            nodes=0,
            mean=float("nan"),
            median=float("nan"),
            p95=float("nan"),
            maximum=float("nan"),
            total_broadcasts=0,
        )
    arr = np.asarray(counts, dtype=float)
    return EnergySummary(
        nodes=int(arr.size),
        mean=float(np.mean(arr)),
        median=float(np.median(arr)),
        p95=float(np.quantile(arr, 0.95)),
        maximum=float(np.max(arr)),
        total_broadcasts=int(np.sum(arr)),
    )
