"""Streaming, mergeable metric reducers over columnar results.

The per-slot :class:`~repro.metrics.collectors.MetricsCollector` callback
API predates the array backends: it needs a ``SlotRecord`` per slot, which
the batched study kernel never materializes and which cannot cross a worker
process boundary.  A :class:`MetricPipeline` replaces it with *reducers*
that consume each trial's **columnar** counters and outcome surface after
the trial finishes:

* :meth:`MetricReducer.reduce` — the columnar fast path: one call per trial
  with the trial's :class:`~repro.sim.results.PrefixCounters` and its
  :class:`~repro.sim.results.SimulationResult`, reduced with numpy array
  arithmetic rather than per-slot Python;
* :meth:`MetricReducer.merge` — combines the partial state of another
  reducer of the same shape, which is what lets a pipeline run sharded
  under ``workers > 1``: each worker reduces its contiguous shard, the
  parent merges the shard partials in trial order, and the result is
  identical to a serial reduction (enforced by the property suite);
* :meth:`MetricReducer.value` — the finalized metric, computable at any
  point without destroying state.

Because reducers never need per-slot records, a pipeline runs on *every*
backend — including the batched study kernel — with exact parity to the
slot-by-slot collector path.  Reducer state is O(successes), O(nodes) or
O(trials) — never O(horizon × trials); the only horizon-sized allowance is
the FG reducer's bounded cache of ``f``/``g`` sample vectors — which is
what makes the runner's *streaming* mode possible: reduce each trial, then
drop its prefix columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError, ConfigurationError
from ..functions import RateFunction
from ..sim.results import PrefixCounters, SimulationResult
from .energy import EnergySummary, summarize_energy
from .latency import LatencySummary
from .throughput import FGThroughputChecker

__all__ = [
    "MetricPipeline",
    "MetricReducer",
    "SuccessTimelineReducer",
    "WindowedRateReducer",
    "FGThroughputReducer",
    "LatencyReducer",
    "EnergyReducer",
    "ScalarSummaryReducer",
    "SCALAR_METRICS",
]


def _require_counters(
    counters: Optional[PrefixCounters], kind: str
) -> PrefixCounters:
    if counters is None:
        raise AnalysisError(
            f"reducer {kind!r} needs per-slot prefix counters, but the trial "
            "carries none (cached result, or counters released before the "
            "pipeline ran)"
        )
    return counters


class MetricReducer:
    """One streaming metric: columnar per-trial reduce + shard merge.

    Subclasses set ``kind`` (the registry name used by
    :class:`~repro.spec.PipelineSpec`), implement the three-method contract
    and expose their construction parameters through :meth:`spec_params` so
    instances can be serialized and cloned for worker shards.
    """

    kind: str = "reducer"

    @property
    def name(self) -> str:
        """Key of this reducer's value in the pipeline output (default: kind)."""
        return self.kind

    def spec_params(self) -> Dict[str, Any]:
        """JSON-serializable constructor parameters (``**params`` rebuilds)."""
        return {}

    def fresh(self) -> "MetricReducer":
        """An empty clone with the same parameters (one per worker shard)."""
        return type(self)(**self.spec_params())

    def reset(self) -> None:
        """Discard accumulated state (called once per study run)."""
        raise NotImplementedError

    def reduce(
        self, counters: Optional[PrefixCounters], outcomes: SimulationResult
    ) -> None:
        """Fold one finished trial into the state (columnar fast path)."""
        raise NotImplementedError

    def merge(self, other: "MetricReducer") -> None:
        """Fold another reducer's partial state into this one, in trial order."""
        raise NotImplementedError

    def value(self) -> Any:
        """The finalized metric (pure: state is left intact)."""
        raise NotImplementedError

    def _check_mergeable(self, other: "MetricReducer") -> None:
        if type(other) is not type(self) or other.spec_params() != self.spec_params():
            raise AnalysisError(
                f"cannot merge reducer {other!r} into {self!r}: "
                "kinds/parameters differ"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in self.spec_params().items())
        return f"{type(self).__name__}({params})"


class SuccessTimelineReducer(MetricReducer):
    """Per-trial success-slot timelines, derived from the successes column.

    Exact columnar counterpart of the slot-by-slot
    :class:`~repro.metrics.collectors.SuccessTimeline` collector: the
    success slots of trial ``i`` are the indices where the cumulative
    successes column increments.
    """

    kind = "success-timeline"

    def __init__(self) -> None:
        self.timelines: List[List[int]] = []

    def reset(self) -> None:
        self.timelines = []

    def reduce(self, counters, outcomes) -> None:
        counters = _require_counters(counters, self.kind)
        self.timelines.append(counters.success_slots().tolist())

    def merge(self, other) -> None:
        self._check_mergeable(other)
        self.timelines.extend(other.timelines)

    def value(self) -> List[List[int]]:
        return [list(timeline) for timeline in self.timelines]

    def first_success_slots(self) -> List[Optional[int]]:
        return [timeline[0] if timeline else None for timeline in self.timelines]


class WindowedRateReducer(MetricReducer):
    """Windowed success counts per trial (trailing partial window included).

    Columnar counterpart of
    :class:`~repro.metrics.collectors.WindowedSuccessCounter`, computed with
    one ``np.add.reduceat`` over the per-slot increments of the successes
    column.
    """

    kind = "windowed-rate"

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self.window = int(window)
        self.counts: List[List[int]] = []

    def spec_params(self) -> Dict[str, Any]:
        return {"window": self.window}

    def reset(self) -> None:
        self.counts = []

    def reduce(self, counters, outcomes) -> None:
        counters = _require_counters(counters, self.kind)
        self.counts.append(counters.windowed_successes(self.window).tolist())

    def merge(self, other) -> None:
        self._check_mergeable(other)
        self.counts.extend(other.counts)

    def rates(self, trial: int) -> List[float]:
        return [count / self.window for count in self.counts[trial]]

    def value(self) -> Dict[str, Any]:
        total = sum(sum(counts) for counts in self.counts)
        return {
            "window": self.window,
            "per_trial_counts": [list(counts) for counts in self.counts],
            "total_successes": int(total),
        }


class FGThroughputReducer(MetricReducer):
    """Definition 1.1 verdicts across trials, via the columnar checker.

    Tracks how many trials satisfied the bound, total violating prefixes and
    the worst prefix ratio (with its trial and slot).  The worst entry is
    updated only on a strictly greater ratio, so merging ordered shard
    partials reproduces the serial scan exactly.
    """

    kind = "fg-throughput"

    def __init__(
        self,
        f: RateFunction,
        g: RateFunction,
        slack: float = 1.0,
        min_prefix: int = 16,
        additive_grace: float = 0.0,
    ) -> None:
        self.f = f
        self.g = g
        self.slack = float(slack)
        self.min_prefix = int(min_prefix)
        self.additive_grace = float(additive_grace)
        self._checker = FGThroughputChecker(
            f, g, slack=slack, min_prefix=min_prefix, additive_grace=additive_grace
        )
        self.trials = 0
        self.satisfied = 0
        self.violations = 0
        self.worst_ratio = 0.0
        self.worst_trial: Optional[int] = None
        self.worst_slot: Optional[int] = None

    def spec_params(self) -> Dict[str, Any]:
        return {
            "f": self.f,
            "g": self.g,
            "slack": self.slack,
            "min_prefix": self.min_prefix,
            "additive_grace": self.additive_grace,
        }

    def reset(self) -> None:
        self.trials = 0
        self.satisfied = 0
        self.violations = 0
        self.worst_ratio = 0.0
        self.worst_trial = None
        self.worst_slot = None

    def reduce(self, counters, outcomes) -> None:
        _require_counters(counters, self.kind)
        report = self._checker.check(outcomes)
        if report.satisfied:
            self.satisfied += 1
        self.violations += report.violations
        if report.worst_ratio > self.worst_ratio:
            self.worst_ratio = report.worst_ratio
            self.worst_trial = self.trials
            self.worst_slot = report.worst_slot
        self.trials += 1

    def merge(self, other) -> None:
        self._check_mergeable(other)
        if other.worst_ratio > self.worst_ratio:
            self.worst_ratio = other.worst_ratio
            self.worst_trial = (
                None
                if other.worst_trial is None
                else self.trials + other.worst_trial
            )
            self.worst_slot = other.worst_slot
        self.trials += other.trials
        self.satisfied += other.satisfied
        self.violations += other.violations

    def _check_mergeable(self, other) -> None:
        # Rate functions compare by (name, func identity is irrelevant for
        # shards cloned from the same spec); compare the scalar envelope and
        # function names instead of spec_params (functions are unhashable
        # payloads there).
        same = (
            type(other) is type(self)
            and other.f.name == self.f.name
            and other.g.name == self.g.name
            and other.slack == self.slack
            and other.min_prefix == self.min_prefix
            and other.additive_grace == self.additive_grace
        )
        if not same:
            raise AnalysisError(
                f"cannot merge reducer {other!r} into {self!r}: "
                "kinds/parameters differ"
            )

    def value(self) -> Dict[str, Any]:
        return {
            "trials": self.trials,
            "satisfied": self.satisfied,
            "satisfied_fraction": (
                self.satisfied / self.trials if self.trials else float("nan")
            ),
            "violations": self.violations,
            "worst_ratio": self.worst_ratio,
            "worst_trial": self.worst_trial,
            "worst_slot": self.worst_slot,
        }


class LatencyReducer(MetricReducer):
    """Slots-to-success distribution over all nodes of all trials."""

    kind = "latency"

    def __init__(self) -> None:
        self.latencies: List[int] = []
        self.unfinished = 0

    def reset(self) -> None:
        self.latencies = []
        self.unfinished = 0

    def reduce(self, counters, outcomes) -> None:
        self.latencies.extend(outcomes.latencies())
        self.unfinished += outcomes.unfinished_nodes

    def merge(self, other) -> None:
        self._check_mergeable(other)
        self.latencies.extend(other.latencies)
        self.unfinished += other.unfinished

    def value(self) -> LatencySummary:
        if not self.latencies:
            nan = float("nan")
            return LatencySummary(
                count=0,
                unfinished=self.unfinished,
                mean=nan,
                median=nan,
                p95=nan,
                maximum=nan,
            )
        arr = np.asarray(self.latencies, dtype=float)
        return LatencySummary(
            count=int(arr.size),
            unfinished=self.unfinished,
            mean=float(np.mean(arr)),
            median=float(np.median(arr)),
            p95=float(np.quantile(arr, 0.95)),
            maximum=float(np.max(arr)),
        )


class EnergyReducer(MetricReducer):
    """Per-node broadcast-count (energy) distribution across trials."""

    kind = "energy"

    def __init__(self) -> None:
        self.counts: List[int] = []

    def reset(self) -> None:
        self.counts = []

    def reduce(self, counters, outcomes) -> None:
        self.counts.extend(outcomes.broadcast_counts())

    def merge(self, other) -> None:
        self._check_mergeable(other)
        self.counts.extend(other.counts)

    def value(self) -> EnergySummary:
        if not self.counts:
            return summarize_energy([])
        arr = np.asarray(self.counts, dtype=float)
        return EnergySummary(
            nodes=int(arr.size),
            mean=float(np.mean(arr)),
            median=float(np.median(arr)),
            p95=float(np.quantile(arr, 0.95)),
            maximum=float(np.max(arr)),
            total_broadcasts=int(np.sum(arr)),
        )


#: Named per-trial scalars a :class:`ScalarSummaryReducer` can track.
SCALAR_METRICS: Dict[str, Callable[[SimulationResult], float]] = {
    "successes": lambda r: float(r.total_successes),
    "arrivals": lambda r: float(r.total_arrivals),
    "active_slots": lambda r: float(r.total_active_slots),
    "jammed_slots": lambda r: float(r.total_jammed_slots),
    "unfinished": lambda r: float(r.unfinished_nodes),
    "total_broadcasts": lambda r: float(r.summary.total_broadcasts),
    "mean_latency": lambda r: r.mean_latency(),
    "wall_time_seconds": lambda r: float(r.wall_time_seconds),
}


class ScalarSummaryReducer(MetricReducer):
    """Distribution summary of one named per-trial scalar.

    Keeps the per-trial value vector (O(trials), never O(horizon)) so the
    finalized mean/std/extrema are bit-identical no matter how the trials
    were sharded — merge is an ordered concatenation, not a floating-point
    moment combination.
    """

    kind = "scalar"

    def __init__(self, metric: str) -> None:
        if metric not in SCALAR_METRICS:
            raise ConfigurationError(
                f"unknown scalar metric {metric!r}; known: "
                f"{', '.join(sorted(SCALAR_METRICS))}"
            )
        self.metric = metric
        self.values_per_trial: List[float] = []

    @property
    def name(self) -> str:
        return f"scalar:{self.metric}"

    def spec_params(self) -> Dict[str, Any]:
        return {"metric": self.metric}

    def reset(self) -> None:
        self.values_per_trial = []

    def reduce(self, counters, outcomes) -> None:
        self.values_per_trial.append(SCALAR_METRICS[self.metric](outcomes))

    def merge(self, other) -> None:
        self._check_mergeable(other)
        self.values_per_trial.extend(other.values_per_trial)

    def value(self) -> Dict[str, float]:
        if not self.values_per_trial:
            nan = float("nan")
            return {"trials": 0, "mean": nan, "std": nan, "min": nan, "max": nan}
        arr = np.asarray(self.values_per_trial, dtype=float)
        return {
            "trials": int(arr.size),
            "mean": float(np.mean(arr)),
            "std": float(np.std(arr)),
            "min": float(np.min(arr)),
            "max": float(np.max(arr)),
        }


class MetricPipeline:
    """An ordered set of reducers fed one finished trial at a time.

    The pipeline is the unit the trial runner schedules: serial runs call
    :meth:`update` per trial; sharded runs give every worker a
    :meth:`fresh` clone and :meth:`merge` the shard partials back in trial
    order.  :meth:`finalize` returns ``{reducer.name: reducer.value()}``
    without consuming state.
    """

    def __init__(self, reducers: Sequence[MetricReducer]) -> None:
        reducers = list(reducers)
        if not reducers:
            raise ConfigurationError("a MetricPipeline needs at least one reducer")
        names = [reducer.name for reducer in reducers]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ConfigurationError(
                f"duplicate reducer name(s): {', '.join(duplicates)}"
            )
        self._reducers: Tuple[MetricReducer, ...] = tuple(reducers)
        self._trials = 0

    @property
    def reducers(self) -> Tuple[MetricReducer, ...]:
        return self._reducers

    @property
    def trials(self) -> int:
        """Trials reduced so far (including merged shard trials)."""
        return self._trials

    def __len__(self) -> int:
        return len(self._reducers)

    def __getitem__(self, name: str) -> MetricReducer:
        for reducer in self._reducers:
            if reducer.name == name:
                return reducer
        raise KeyError(name)

    def reset(self) -> None:
        self._trials = 0
        for reducer in self._reducers:
            reducer.reset()

    def fresh(self) -> "MetricPipeline":
        return MetricPipeline([reducer.fresh() for reducer in self._reducers])

    def update(self, result: SimulationResult) -> None:
        counters = getattr(result, "counters", None)
        for reducer in self._reducers:
            reducer.reduce(counters, result)
        self._trials += 1

    def merge(self, other: "MetricPipeline") -> None:
        if len(other._reducers) != len(self._reducers):
            raise AnalysisError("cannot merge pipelines of different shapes")
        for mine, theirs in zip(self._reducers, other._reducers):
            mine.merge(theirs)
        self._trials += other._trials

    def finalize(self) -> Dict[str, Any]:
        return {reducer.name: reducer.value() for reducer in self._reducers}

    def to_spec(self):
        """The serializable :class:`~repro.spec.PipelineSpec` of this pipeline."""
        from ..spec.pipeline import PipelineSpec

        return PipelineSpec.from_pipeline(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(r.name for r in self._reducers)
        return f"MetricPipeline([{names}], trials={self._trials})"
