"""Metric collectors that hook into the simulation engine slot-by-slot."""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional

from ..types import SlotOutcome, SlotRecord

__all__ = ["MetricsCollector", "SuccessTimeline", "WindowedSuccessCounter"]


class MetricsCollector:
    """Base class for collectors attached to a :class:`~repro.sim.engine.Simulator`.

    Collectors are optional: most experiments work from the
    :class:`~repro.sim.results.SimulationResult` prefix arrays alone.  They are
    useful when per-slot information is needed without retaining the full
    trace.
    """

    def on_run_start(self, horizon: int) -> None:
        """Called before the first slot."""

    def on_slot(self, record: SlotRecord) -> None:
        """Called after each slot with its full record."""

    def on_run_end(self, result) -> None:
        """Called once after the last slot with the final result."""


class SuccessTimeline(MetricsCollector):
    """Records the global slot index of every success."""

    def __init__(self) -> None:
        self.success_slots: List[int] = []

    def on_run_start(self, horizon: int) -> None:
        self.success_slots = []

    def on_slot(self, record: SlotRecord) -> None:
        if record.outcome is SlotOutcome.SUCCESS:
            self.success_slots.append(record.slot)

    def successes_before(self, slot: int) -> int:
        # success_slots is appended in slot order, so it is always sorted.
        return bisect_right(self.success_slots, slot)

    def first_success(self) -> Optional[int]:
        return self.success_slots[0] if self.success_slots else None


class WindowedSuccessCounter(MetricsCollector):
    """Counts successes in consecutive windows of fixed length.

    Gives the success-rate time series used to visualise how throughput
    evolves during a run (e.g. to see the batch phase delivering a constant
    rate and the dynamic phase degrading under jamming).
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.counts: List[int] = []
        self._current = 0
        self._filled = 0

    def on_run_start(self, horizon: int) -> None:
        self.counts = []
        self._current = 0
        self._filled = 0

    def on_slot(self, record: SlotRecord) -> None:
        if record.outcome is SlotOutcome.SUCCESS:
            self._current += 1
        self._filled += 1
        if self._filled == self.window:
            self.counts.append(self._current)
            self._current = 0
            self._filled = 0

    def on_run_end(self, result) -> None:
        if self._filled:
            self.counts.append(self._current)
            self._current = 0
            self._filled = 0

    def rates(self) -> List[float]:
        return [count / self.window for count in self.counts]
