"""Per-node latency statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..sim.results import SimulationResult

__all__ = ["LatencySummary", "summarize_latencies"]


@dataclass
class LatencySummary:
    """Summary of the slots-to-success distribution of one or more runs."""

    count: int
    unfinished: int
    mean: float
    median: float
    p95: float
    maximum: float

    @property
    def completion_rate(self) -> float:
        total = self.count + self.unfinished
        return self.count / total if total else float("nan")


def summarize_latencies(results: Sequence[SimulationResult]) -> LatencySummary:
    """Aggregate latency statistics over one or more runs."""
    latencies: list = []
    unfinished = 0
    for result in results:
        latencies.extend(result.latencies())
        unfinished += result.unfinished_nodes
    if not latencies:
        return LatencySummary(
            count=0,
            unfinished=unfinished,
            mean=float("nan"),
            median=float("nan"),
            p95=float("nan"),
            maximum=float("nan"),
        )
    arr = np.asarray(latencies, dtype=float)
    return LatencySummary(
        count=int(arr.size),
        unfinished=unfinished,
        mean=float(np.mean(arr)),
        median=float(np.median(arr)),
        p95=float(np.quantile(arr, 0.95)),
        maximum=float(np.max(arr)),
    )
