"""Metrics: throughput, (f, g)-throughput verification, latency and energy.

Two collection styles coexist:

* per-slot :class:`MetricsCollector` callbacks (reference/vectorized
  backends only — they need ``SlotRecord`` streams);
* the columnar :class:`MetricPipeline` of streaming
  :class:`MetricReducer` objects, which runs on every backend — including
  the batched study kernel — and under ``workers > 1`` via shard merges.
"""

from .collectors import MetricsCollector, SuccessTimeline, WindowedSuccessCounter
from .pipeline import (
    SCALAR_METRICS,
    EnergyReducer,
    FGThroughputReducer,
    LatencyReducer,
    MetricPipeline,
    MetricReducer,
    ScalarSummaryReducer,
    SuccessTimelineReducer,
    WindowedRateReducer,
)
from .throughput import (
    FGThroughputChecker,
    ThroughputReport,
    classical_throughput_series,
    check_fg_throughput,
)
from .latency import LatencySummary, summarize_latencies
from .energy import EnergySummary, summarize_energy

__all__ = [
    "MetricsCollector",
    "SuccessTimeline",
    "WindowedSuccessCounter",
    "MetricPipeline",
    "MetricReducer",
    "SuccessTimelineReducer",
    "WindowedRateReducer",
    "FGThroughputReducer",
    "LatencyReducer",
    "EnergyReducer",
    "ScalarSummaryReducer",
    "SCALAR_METRICS",
    "FGThroughputChecker",
    "ThroughputReport",
    "classical_throughput_series",
    "check_fg_throughput",
    "LatencySummary",
    "summarize_latencies",
    "EnergySummary",
    "summarize_energy",
]
