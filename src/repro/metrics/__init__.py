"""Metrics: throughput, (f, g)-throughput verification, latency and energy."""

from .collectors import MetricsCollector, SuccessTimeline, WindowedSuccessCounter
from .throughput import (
    FGThroughputChecker,
    ThroughputReport,
    classical_throughput_series,
    check_fg_throughput,
)
from .latency import LatencySummary, summarize_latencies
from .energy import EnergySummary, summarize_energy

__all__ = [
    "MetricsCollector",
    "SuccessTimeline",
    "WindowedSuccessCounter",
    "FGThroughputChecker",
    "ThroughputReport",
    "classical_throughput_series",
    "check_fg_throughput",
    "LatencySummary",
    "summarize_latencies",
    "EnergySummary",
    "summarize_energy",
]
