"""Throughput metrics, including the paper's (f, g)-throughput check.

Definition 1.1 of the paper: an algorithm achieves (f, g)-throughput if for
every ``t >= 1`` the number of active slots among the first ``t`` slots is at
most ``n_t · f(t) + d_t · g(t)``, where ``n_t`` is the number of arrivals and
``d_t`` the number of jammed slots in the first ``t`` slots, with high
probability in ``n_t``.

The empirical checker verifies the inequality for every prefix of a finished
run (optionally with a slack multiplier to absorb small-``t`` constant-factor
effects) and reports the worst prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from ..functions import RateFunction
from ..sim.results import SimulationResult

__all__ = [
    "ThroughputReport",
    "FGThroughputChecker",
    "check_fg_throughput",
    "classical_throughput_series",
]


@dataclass
class ThroughputReport:
    """Outcome of checking one run against the (f, g)-throughput bound."""

    satisfied: bool
    worst_slot: int
    worst_ratio: float
    active_at_worst: int
    bound_at_worst: float
    violations: int
    checked_prefixes: int

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.satisfied


class FGThroughputChecker:
    """Checks the Definition 1.1 inequality on every prefix of a run.

    The check is *columnar*: it reduces the run's
    :class:`~repro.sim.results.PrefixCounters` columns with array
    arithmetic instead of a per-slot Python loop, and memoizes the ``f``/``g``
    sample vectors per prefix range so checking many trials of the same
    horizon evaluates the rate functions once.
    """

    def __init__(
        self,
        f: RateFunction,
        g: RateFunction,
        slack: float = 1.0,
        min_prefix: int = 16,
        additive_grace: float = 0.0,
    ) -> None:
        if slack <= 0:
            raise AnalysisError("slack must be positive")
        self._f = f
        self._g = g
        self._slack = slack
        self._min_prefix = max(1, min_prefix)
        self._grace = additive_grace
        self._rate_cache: dict = {}

    def bound(self, t: int, arrivals: int, jammed: int) -> float:
        """The right-hand side ``slack · (n_t f(t) + d_t g(t)) + grace``."""
        return (
            self._slack
            * (arrivals * self._f(float(t)) + jammed * self._g(float(t)))
            + self._grace
        )

    #: Cap on memoized (start, stop) sample-vector pairs.  Studies checking
    #: many trials share one horizon (one entry); per-trial horizons under
    #: stop_when_drained would otherwise accumulate an O(horizon) pair per
    #: distinct trial length.
    _RATE_CACHE_ENTRIES = 4

    def _rate_values(self, start: int, stop: int):
        """Memoized ``f``/``g`` samples over ``t = start..stop`` inclusive."""
        key = (start, stop)
        cached = self._rate_cache.get(key)
        if cached is None:
            t = np.arange(start, stop + 1, dtype=float)
            cached = (self._f.values(t), self._g.values(t))
            while len(self._rate_cache) >= self._RATE_CACHE_ENTRIES:
                self._rate_cache.pop(next(iter(self._rate_cache)))
            self._rate_cache[key] = cached
        return cached

    def check(self, result: SimulationResult) -> ThroughputReport:
        horizon = result.horizon
        if horizon < 1:
            raise AnalysisError("cannot check an empty run")
        counters = getattr(result, "counters", None)
        if counters is None:
            raise AnalysisError(
                "result carries no per-slot prefix counters (streamed or "
                "cached); the (f, g)-throughput bound needs full prefixes"
            )
        start = self._min_prefix
        worst_slot = start
        worst_ratio = 0.0
        worst_active = 0
        worst_bound = float("inf")
        violations = 0
        checked = 0
        if start <= horizon:
            active = counters.active[start : horizon + 1]
            arrivals = counters.arrivals[start : horizon + 1]
            jammed = counters.jammed[start : horizon + 1]
            f_values, g_values = self._rate_values(start, horizon)
            bounds = (
                self._slack * (arrivals * f_values + jammed * g_values)
                + self._grace
            )
            checked = int(active.shape[0])
            violations = int(np.count_nonzero(active > bounds))
            positive = bounds > 0
            ratios = np.zeros(checked, dtype=float)
            np.divide(active, bounds, out=ratios, where=positive)
            ratios[~positive & (active > 0)] = float("inf")
            index = int(np.argmax(ratios))  # first maximum, like the old loop
            if ratios[index] > 0.0:
                worst_ratio = float(ratios[index])
                worst_slot = start + index
                worst_active = int(active[index])
                worst_bound = float(bounds[index])
        return ThroughputReport(
            satisfied=violations == 0,
            worst_slot=worst_slot,
            worst_ratio=worst_ratio,
            active_at_worst=worst_active,
            bound_at_worst=worst_bound,
            violations=violations,
            checked_prefixes=checked,
        )


def check_fg_throughput(
    result: SimulationResult,
    f: RateFunction,
    g: RateFunction,
    slack: float = 1.0,
    min_prefix: int = 16,
    additive_grace: float = 0.0,
) -> ThroughputReport:
    """Functional wrapper around :class:`FGThroughputChecker`."""
    checker = FGThroughputChecker(
        f, g, slack=slack, min_prefix=min_prefix, additive_grace=additive_grace
    )
    return checker.check(result)


def classical_throughput_series(
    result: SimulationResult,
    checkpoints: Optional[Sequence[int]] = None,
) -> List[float]:
    """The classical throughput ``n_t / a_t`` evaluated at the given checkpoints.

    Defaults to powers of two up to the horizon.  Inactive prefixes yield
    ``inf`` (vacuous throughput), matching :meth:`SimulationResult.classical_throughput`.
    """
    if checkpoints is None:
        checkpoints = []
        t = 2
        while t <= result.horizon:
            checkpoints.append(t)
            t *= 2
        if not checkpoints or checkpoints[-1] != result.horizon:
            checkpoints.append(result.horizon)
    series = []
    for t in checkpoints:
        if t < 1 or t > result.horizon:
            raise AnalysisError(f"checkpoint {t} outside horizon {result.horizon}")
        series.append(result.classical_throughput(t))
    return series
