"""Deterministic randomness management.

Every stochastic component of a simulation (each node's protocol instance, the
adversary, workload generators) draws from its own :class:`numpy.random.Generator`
derived from a single root seed.  This keeps runs reproducible and ensures that
comparing two protocols under the same workload uses identical adversary
randomness.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.SeedSequence, None]


class SeedTree:
    """A tree of independent random generators derived from one root seed.

    Children are spawned lazily by name or index; spawning the same path twice
    yields independent streams (the underlying ``SeedSequence.spawn`` advances
    state), so callers should hold on to generators they intend to reuse.
    """

    def __init__(self, seed: Union[SeedLike, "SeedTree"] = None) -> None:
        if isinstance(seed, SeedTree):
            self._sequence = seed._sequence
        elif isinstance(seed, np.random.SeedSequence):
            self._sequence = seed
        else:
            self._sequence = np.random.SeedSequence(seed)

    @property
    def entropy(self):
        return self._sequence.entropy

    def generator(self) -> np.random.Generator:
        """Return a generator seeded from this node of the tree."""
        return np.random.default_rng(self._sequence.spawn(1)[0])

    def child(self) -> "SeedTree":
        """Spawn an independent child tree."""
        return SeedTree(self._sequence.spawn(1)[0])

    def children(self, count: int) -> Iterator["SeedTree"]:
        """Spawn ``count`` independent child trees."""
        for sequence in self._sequence.spawn(count):
            yield SeedTree(sequence)


def make_generator(seed: SeedLike = None) -> np.random.Generator:
    """Convenience wrapper producing a generator directly from a seed."""
    return SeedTree(seed).generator()


def spawn_generators(seed: SeedLike, count: int) -> list:
    """Produce ``count`` independent generators from one seed."""
    tree = SeedTree(seed)
    return [child.generator() for child in tree.children(count)]


def trial_seeds(seed: SeedLike, trials: int) -> list:
    """Derive per-trial root seeds for a multi-trial study."""
    tree = SeedTree(seed)
    return [child for child in tree.children(trials)]


def coerce_generator(
    rng: Optional[Union[np.random.Generator, int]] = None,
) -> np.random.Generator:
    """Accept ``None``, an integer seed or an existing generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return make_generator(rng)
