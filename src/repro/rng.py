"""Deterministic randomness management.

Every stochastic component of a simulation (each node's protocol instance, the
adversary, workload generators) draws from its own :class:`numpy.random.Generator`
derived from a single root seed.  This keeps runs reproducible and ensures that
comparing two protocols under the same workload uses identical adversary
randomness.

Bulk seeding
------------

Study-level batching spawns thousands of per-node generators per second, which
makes the per-child cost of ``SeedSequence.spawn`` + ``default_rng`` the hot
path.  The module therefore also provides a *bulk* seeding facility:

* :func:`bulk_seed_states` re-implements the ``SeedSequence`` entropy-mixing
  hash as vectorized numpy ``uint32`` arithmetic, producing the
  ``generate_state(4, uint64)`` words for many spawn keys in one pass;
* :class:`ReusableGenerator` wraps one ``PCG64`` bit generator whose state can
  be reset to any of those words, yielding the *bit-identical* stream a fresh
  ``default_rng(seed_sequence)`` would produce without constructing new
  generator objects.

Both are verified against numpy itself the first time they are used
(:func:`fast_seed_path_ok`); if numpy's internals ever diverge, callers are
expected to fall back to the plain per-child API.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

SeedLike = Union[int, np.random.SeedSequence, None]


class SeedTree:
    """A tree of independent random generators derived from one root seed.

    Children are spawned lazily by name or index; spawning the same path twice
    yields independent streams (the underlying ``SeedSequence.spawn`` advances
    state), so callers should hold on to generators they intend to reuse.
    """

    def __init__(self, seed: Union[SeedLike, "SeedTree"] = None) -> None:
        if isinstance(seed, SeedTree):
            self._sequence = seed._sequence
        elif isinstance(seed, np.random.SeedSequence):
            self._sequence = seed
        else:
            self._sequence = np.random.SeedSequence(seed)

    @property
    def entropy(self):
        return self._sequence.entropy

    @property
    def sequence(self) -> np.random.SeedSequence:
        """The underlying seed sequence (read-only uses must not spawn)."""
        return self._sequence

    def generator(self) -> np.random.Generator:
        """Return a generator seeded from this node of the tree."""
        return np.random.default_rng(self._sequence.spawn(1)[0])

    def child(self) -> "SeedTree":
        """Spawn an independent child tree."""
        return SeedTree(self._sequence.spawn(1)[0])

    def children(self, count: int) -> Iterator["SeedTree"]:
        """Spawn ``count`` independent child trees."""
        for sequence in self._sequence.spawn(count):
            yield SeedTree(sequence)


def make_generator(seed: SeedLike = None) -> np.random.Generator:
    """Convenience wrapper producing a generator directly from a seed."""
    return SeedTree(seed).generator()


def spawn_generators(seed: SeedLike, count: int) -> list:
    """Produce ``count`` independent generators from one seed."""
    tree = SeedTree(seed)
    return [child.generator() for child in tree.children(count)]


def trial_seeds(seed: SeedLike, trials: int) -> list:
    """Derive per-trial root seeds for a multi-trial study."""
    tree = SeedTree(seed)
    return [child for child in tree.children(trials)]


class TrialSeedBatch:
    """The per-trial seed trees of a study, materialized only on demand.

    Spawning a ``SeedSequence`` child costs a few microseconds; a batched
    study that derives its streams arithmetically (see
    :meth:`spawn_descriptor`) never needs the actual objects.  ``trees``
    materializes them lazily — with exactly the spawn keys
    :func:`trial_seeds` would have produced — for the per-trial fallback
    paths.
    """

    def __init__(self, seed: SeedLike, trials: int) -> None:
        self._root = SeedTree(seed)
        self._trials = trials
        self._base = self._root.sequence.n_children_spawned
        self._trees: Optional[List[SeedTree]] = None

    def __len__(self) -> int:
        return self._trials

    @property
    def trees(self) -> List["SeedTree"]:
        if self._trees is None:
            self._trees = list(self._root.children(self._trials))
        return self._trees

    def spawn_descriptor(self):
        """``(entropy, spawn_key, first_child_index)`` of the root, read-only.

        Trial ``t``'s root sequence is
        ``SeedSequence(entropy, spawn_key=spawn_key + (first_child_index + t,))``
        with zero children spawned.
        """
        sequence = self._root.sequence
        return sequence.entropy, tuple(sequence.spawn_key), self._base


def coerce_generator(
    rng: Optional[Union[np.random.Generator, int]] = None,
) -> np.random.Generator:
    """Accept ``None``, an integer seed or an existing generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return make_generator(rng)


# --------------------------------------------------------------------------
# Bulk seeding: vectorized SeedSequence hashing + PCG64 state reseeding.
#
# Constants below are the published SeedSequence / PCG64 parameters; numpy
# guarantees stream stability for both, and fast_seed_path_ok() re-verifies
# the equivalence at runtime before any caller relies on it.
# --------------------------------------------------------------------------

_POOL_SIZE = 4
_XSHIFT = np.uint32(16)
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = 0xCA01F9DD
_MIX_MULT_R = 0x4973F715
_U32 = 0xFFFFFFFF

_PCG64_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_U128 = (1 << 128) - 1


def int_to_uint32_words(value: int) -> List[int]:
    """Little-endian 32-bit words of a non-negative int (``0`` -> ``[0]``).

    Mirrors numpy's internal coercion of entropy/spawn-key components.
    """
    if value < 0:
        raise ValueError("seed components must be non-negative")
    if value == 0:
        return [0]
    words = []
    while value > 0:
        words.append(value & _U32)
        value >>= 32
    return words


def bulk_seed_states(word_matrix: np.ndarray) -> np.ndarray:
    """``SeedSequence.generate_state(4, uint64)`` for many sequences at once.

    ``word_matrix`` holds one assembled entropy per row (entropy words followed
    by spawn-key words, each already coerced to ``uint32``); every row must
    have the same length, exactly as numpy would assemble it.  Returns an
    ``(n, 4)`` ``uint64`` array whose rows equal what
    ``np.random.SeedSequence(entropy, spawn_key=key).generate_state(4, uint64)``
    produces for the corresponding row.
    """
    words = np.ascontiguousarray(word_matrix, dtype=np.uint32)
    n, length = words.shape
    pool = np.zeros((n, _POOL_SIZE), dtype=np.uint32)

    hash_const = _INIT_A

    def _hash(column: np.ndarray) -> np.ndarray:
        nonlocal hash_const
        value = column ^ np.uint32(hash_const)
        hash_const = (hash_const * _MULT_A) & _U32
        value = value * np.uint32(hash_const)
        value ^= value >> _XSHIFT
        return value

    def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        result = x * np.uint32(_MIX_MULT_L) - y * np.uint32(_MIX_MULT_R)
        result ^= result >> _XSHIFT
        return result

    zero = np.zeros(n, dtype=np.uint32)
    for i in range(_POOL_SIZE):
        pool[:, i] = _hash(words[:, i] if i < length else zero)
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                pool[:, i_dst] = _mix(pool[:, i_dst], _hash(pool[:, i_src]))
    for i_src in range(_POOL_SIZE, length):
        for i_dst in range(_POOL_SIZE):
            pool[:, i_dst] = _mix(pool[:, i_dst], _hash(words[:, i_src]))

    state = np.empty((n, 2 * _POOL_SIZE), dtype=np.uint32)
    hash_const = _INIT_B
    for i_dst in range(2 * _POOL_SIZE):
        data = pool[:, i_dst % _POOL_SIZE] ^ np.uint32(hash_const)
        hash_const = (hash_const * _MULT_B) & _U32
        data = data * np.uint32(hash_const)
        data ^= data >> _XSHIFT
        state[:, i_dst] = data
    return state.view(np.uint64)


def assemble_seed_words(
    entropy: int, spawn_keys: Sequence[Sequence[int]]
) -> Optional[np.ndarray]:
    """Word matrix for :func:`bulk_seed_states` from one entropy + many keys.

    Returns ``None`` when a spawn-key component does not fit in 32 bits (a
    case numpy encodes with extra words, which would make rows ragged) — the
    caller should fall back to real ``SeedSequence`` objects.
    """
    entropy_words = int_to_uint32_words(int(entropy))
    keys = np.asarray(spawn_keys, dtype=np.uint64)
    if keys.ndim != 2:
        raise ValueError("spawn_keys must be a 2-D (n, k) array of components")
    if keys.size and keys.max() > _U32:
        return None
    if keys.shape[1] and len(entropy_words) < _POOL_SIZE:
        # numpy zero-pads the entropy to the pool size whenever a spawn key is
        # present, so the key words never alias entropy words.
        entropy_words = entropy_words + [0] * (_POOL_SIZE - len(entropy_words))
    n = keys.shape[0]
    matrix = np.empty((n, len(entropy_words) + keys.shape[1]), dtype=np.uint32)
    matrix[:, : len(entropy_words)] = np.asarray(entropy_words, dtype=np.uint32)
    matrix[:, len(entropy_words) :] = keys.astype(np.uint32)
    return matrix


def seed_states_for_entropies(entropies: Sequence[int]) -> np.ndarray:
    """State words for ``SeedSequence(entropy)`` (no spawn key) per entropy.

    Entropies may need different word counts, so rows are grouped by length
    internally; the output order matches the input order.
    """
    values = np.asarray(entropies, dtype=np.uint64)
    if values.ndim != 1:
        raise ValueError("entropies must be one-dimensional")
    out = np.empty((values.size, 4), dtype=np.uint64)
    low = (values & np.uint64(_U32)).astype(np.uint32)
    high = (values >> np.uint64(32)).astype(np.uint32)
    single = high == 0  # one-word entropies (value < 2**32)
    if single.any():
        out[single] = bulk_seed_states(low[single][:, None])
    if not single.all():
        double = ~single
        out[double] = bulk_seed_states(
            np.stack((low[double], high[double]), axis=1)
        )
    return out


def _pcg64_seeded_state(words: Sequence[int]) -> Tuple[int, int]:
    """``(state, inc)`` after ``pcg_setseq_128_srandom`` seeding.

    ``words`` are the four ``generate_state(4, uint64)`` values; the result
    is the 128-bit generator state a fresh ``PCG64(seed_sequence)`` starts
    from.  (The same formula exists limb-wise in :func:`pcg64_bulk_init` for
    the vectorized path; both are pinned by the runtime self-checks.)
    """
    initstate = (int(words[0]) << 64) | int(words[1])
    initseq = (int(words[2]) << 64) | int(words[3])
    inc = ((initseq << 1) | 1) & _U128
    state = ((inc + initstate) * _PCG64_MULT + inc) & _U128
    return state, inc


def pcg64_state_dict(words: Sequence[int]) -> dict:
    """PCG64 ``.state`` dict seeded exactly like ``PCG64(seed_sequence)``."""
    state, inc = _pcg64_seeded_state(words)
    return {
        "bit_generator": "PCG64",
        "state": {"state": state, "inc": inc},
        "has_uint32": 0,
        "uinteger": 0,
    }


class ReusableGenerator:
    """One ``Generator``/``PCG64`` pair reseedable to any spawned stream.

    ``reseed(words)`` resets the bit generator to the state a fresh
    ``default_rng(seed_sequence)`` would start from (``words`` being that
    sequence's ``generate_state(4, uint64)``), so consecutive uses replay
    independent streams without allocating new generator objects.  The caller
    must finish consuming one stream before reseeding to the next.
    """

    def __init__(self) -> None:
        self._bit_generator = np.random.PCG64(0)
        self.generator = np.random.Generator(self._bit_generator)
        self._template = self._bit_generator.state
        self._template["has_uint32"] = 0
        self._template["uinteger"] = 0

    def reseed(self, words: Sequence[int]) -> np.random.Generator:
        state, inc = _pcg64_seeded_state(words)
        template = self._template
        template["state"]["state"] = state
        template["state"]["inc"] = inc
        self._bit_generator.state = template
        return self.generator


# --- vectorized PCG64 stepping (128-bit limb arithmetic) -------------------

_M_HI = np.uint64(_PCG64_MULT >> 64)
_M_LO = np.uint64(_PCG64_MULT & 0xFFFFFFFFFFFFFFFF)
_U32_64 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)


def _mulhi64(a: np.ndarray, b: np.ndarray):
    a0 = a & _U32_64
    a1 = a >> _SHIFT32
    b0 = b & _U32_64
    b1 = b >> _SHIFT32
    lo_lo = a0 * b0
    m1 = a1 * b0 + (lo_lo >> _SHIFT32)
    m2 = a0 * b1 + (m1 & _U32_64)
    return a1 * b1 + (m1 >> _SHIFT32) + (m2 >> _SHIFT32)


def _add128(ahi, alo, bhi, blo):
    lo = alo + blo
    carry = (lo < alo).astype(np.uint64)
    return ahi + bhi + carry, lo


def _pcg64_step(shi, slo, ihi, ilo):
    hi = _mulhi64(slo, _M_LO) + slo * _M_HI + shi * _M_LO
    lo = slo * _M_LO
    return _add128(hi, lo, ihi, ilo)


def _pcg64_output(shi, slo):
    rotation = shi >> np.uint64(58)
    value = shi ^ slo
    return (value >> rotation) | (
        value << ((np.uint64(64) - rotation) & np.uint64(63))
    )


def pcg64_bulk_init(words: np.ndarray):
    """Vectorized ``pcg_setseq_128_srandom``: (state, inc) limbs per row.

    ``words`` is an ``(n, 4)`` array of ``generate_state(4, uint64)`` values.
    Returns four ``(n,)`` ``uint64`` arrays: state-hi, state-lo, inc-hi,
    inc-lo.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    init_hi, init_lo = words[:, 0], words[:, 1]
    seq_hi, seq_lo = words[:, 2], words[:, 3]
    inc_hi = (seq_hi << np.uint64(1)) | (seq_lo >> np.uint64(63))
    inc_lo = (seq_lo << np.uint64(1)) | np.uint64(1)
    state_hi, state_lo = _add128(inc_hi, inc_lo, init_hi, init_lo)
    state_hi, state_lo = _pcg64_step(state_hi, state_lo, inc_hi, inc_lo)
    return state_hi, state_lo, inc_hi, inc_lo


def bulk_bounded_pairs63(state_words: np.ndarray) -> np.ndarray:
    """Two ``integers(0, 2**63 - 1)`` draws per stream, fully vectorized.

    Replicates numpy's Lemire bounded sampling on the PCG64 raw stream, so
    row ``i`` equals what ``default_rng(seed_sequence_i)`` would return for
    two consecutive ``integers(0, 2**63 - 1)`` calls.  Guarded by
    :func:`fast_bounded_pairs_ok`.
    """
    shi, slo, ihi, ilo = pcg64_bulk_init(state_words)
    rng_excl = np.uint64(2**63 - 1)
    # Lemire threshold (2**64 - rng_excl) % rng_excl == 2 for this range.
    threshold = np.uint64(2)
    out = np.empty((shi.size, 2), dtype=np.uint64)
    for column in range(2):
        shi, slo = _pcg64_step(shi, slo, ihi, ilo)
        raw = _pcg64_output(shi, slo)
        high = _mulhi64(raw, rng_excl)
        leftover = raw * rng_excl
        rejected = leftover < threshold
        while rejected.any():  # probability ~2**-62 per draw
            idx = np.nonzero(rejected)[0]
            shi[idx], slo[idx] = _pcg64_step(shi[idx], slo[idx], ihi[idx], ilo[idx])
            raw_idx = _pcg64_output(shi[idx], slo[idx])
            high[idx] = _mulhi64(raw_idx, rng_excl)
            leftover[idx] = raw_idx * rng_excl
            rejected = leftover < threshold
        out[:, column] = high
    return out


class NodeStreamPool:
    """Many independent PCG64 streams advanced with array operations.

    Each row of the pool is one ``default_rng(seed_sequence)`` stream, stored
    as its raw 128-bit generator state (two ``uint64`` limbs for the state,
    two for the increment) plus numpy's ``next_uint32`` half-word buffer.
    Draws are replicated bit-for-bit:

    * :meth:`doubles` — ``Generator.random()`` (one raw 64-bit word each,
      never touching the 32-bit buffer);
    * :meth:`next_u32` — the buffered ``next_uint32`` primitive (low half
      first, high half buffered);
    * :meth:`bounded_u32` — ``Generator.integers(0, n)`` for ranges that fit
      32 bits (numpy's buffered Lemire rejection sampling);
    * :meth:`pow2_batch` — ``Generator.integers(off, off + 2**k, size=c)``
      (power-of-two ranges have a zero rejection threshold, so each draw is
      exactly one buffered ``next_uint32``);
    * :meth:`bounded_scalar` — arbitrary ranges for a single row, including
      the 64-bit Lemire path for ranges beyond 32 bits.

    The replication is pinned by :func:`lockstep_streams_ok`, which checks an
    interleaved call pattern against real ``numpy`` generators at runtime;
    callers must consult it before trusting the pool.
    """

    def __init__(self, capacity: int = 0) -> None:
        self._capacity = 0
        self._state_hi = np.zeros(0, dtype=np.uint64)
        self._state_lo = np.zeros(0, dtype=np.uint64)
        self._inc_hi = np.zeros(0, dtype=np.uint64)
        self._inc_lo = np.zeros(0, dtype=np.uint64)
        self._has32 = np.zeros(0, dtype=bool)
        self._buf32 = np.zeros(0, dtype=np.uint64)
        if capacity:
            self.ensure_capacity(capacity)

    @property
    def capacity(self) -> int:
        return self._capacity

    def ensure_capacity(self, capacity: int) -> None:
        """Grow the backing arrays (appending unseeded rows) to ``capacity``."""
        if capacity <= self._capacity:
            return
        grow = capacity - self._capacity
        self._state_hi = np.concatenate((self._state_hi, np.zeros(grow, np.uint64)))
        self._state_lo = np.concatenate((self._state_lo, np.zeros(grow, np.uint64)))
        self._inc_hi = np.concatenate((self._inc_hi, np.zeros(grow, np.uint64)))
        self._inc_lo = np.concatenate((self._inc_lo, np.zeros(grow, np.uint64)))
        self._has32 = np.concatenate((self._has32, np.zeros(grow, bool)))
        self._buf32 = np.concatenate((self._buf32, np.zeros(grow, np.uint64)))
        self._capacity = capacity

    def remap(self, gather: np.ndarray, capacity: int) -> None:
        """Re-layout the pool: new row ``i`` takes old row ``gather[i]``.

        Rows where ``gather`` is negative become unseeded.  Used when a
        rectangular (trials × nodes) layout grows its per-trial capacity.
        """
        valid = gather >= 0
        source = np.where(valid, gather, 0)
        for name in ("_state_hi", "_state_lo", "_inc_hi", "_inc_lo", "_buf32"):
            old = getattr(self, name)
            new = np.zeros(capacity, dtype=old.dtype)
            new[: len(gather)] = np.where(valid, old[source], 0)
            setattr(self, name, new)
        new_has = np.zeros(capacity, dtype=bool)
        new_has[: len(gather)] = self._has32[source] & valid
        self._has32 = new_has
        self._capacity = capacity

    def seed_rows(self, rows: np.ndarray, state_words: np.ndarray) -> None:
        """Initialize ``rows`` from ``generate_state(4, uint64)`` word rows."""
        shi, slo, ihi, ilo = pcg64_bulk_init(state_words)
        self._state_hi[rows] = shi
        self._state_lo[rows] = slo
        self._inc_hi[rows] = ihi
        self._inc_lo[rows] = ilo
        self._has32[rows] = False

    # ------------------------------------------------------------ raw draws

    def raw64(self, rows: np.ndarray) -> np.ndarray:
        """One raw 64-bit word per row (``next_uint64``); advances the states."""
        shi, slo = _pcg64_step(
            self._state_hi[rows],
            self._state_lo[rows],
            self._inc_hi[rows],
            self._inc_lo[rows],
        )
        self._state_hi[rows] = shi
        self._state_lo[rows] = slo
        return _pcg64_output(shi, slo)

    def doubles(self, rows: np.ndarray) -> np.ndarray:
        """One ``Generator.random()`` double per row."""
        return (self.raw64(rows) >> np.uint64(11)) * (1.0 / 9007199254740992.0)

    def next_u32(self, rows: np.ndarray) -> np.ndarray:
        """One buffered ``next_uint32`` per row, as uint64 values < 2**32."""
        has = self._has32[rows]
        out = np.empty(len(rows), dtype=np.uint64)
        if has.any():
            buffered = rows[has]
            out[has] = self._buf32[buffered]
            self._has32[buffered] = False
        fresh = ~has
        if fresh.any():
            need = rows[fresh]
            raw = self.raw64(need)
            out[fresh] = raw & np.uint64(0xFFFFFFFF)
            self._buf32[need] = raw >> np.uint64(32)
            self._has32[need] = True
        return out

    # -------------------------------------------------------- bounded draws

    def bounded_u32(self, rows: np.ndarray, rng: np.ndarray) -> np.ndarray:
        """``Generator.integers(0, rng + 1)`` per row; each ``rng`` < 2**32 - 1.

        Rows with ``rng == 0`` consume nothing and yield 0, exactly as numpy's
        zero-range path does.
        """
        rng = np.broadcast_to(np.asarray(rng, dtype=np.uint64), (len(rows),))
        out = np.zeros(len(rows), dtype=np.uint64)
        draw = rng > 0
        if not draw.any():
            return out
        sub_rows = rows[draw]
        rng_excl = rng[draw] + np.uint64(1)
        m = self.next_u32(sub_rows) * rng_excl
        leftover = m & np.uint64(0xFFFFFFFF)
        maybe = leftover < rng_excl
        if maybe.any():
            threshold = (np.uint64(0x100000000) - rng_excl) % rng_excl
            reject = leftover < threshold
            while reject.any():
                redo = np.nonzero(reject)[0]
                m[redo] = self.next_u32(sub_rows[redo]) * rng_excl[redo]
                leftover = m & np.uint64(0xFFFFFFFF)
                reject = leftover < threshold
        out[draw] = m >> np.uint64(32)
        return out

    def pow2_batch(self, rows: np.ndarray, k: int, count: int) -> np.ndarray:
        """``integers(2**k, 2**(k+1), size=count)`` per row, as (count, rows).

        Power-of-two ranges have rejection threshold 0, so each draw is one
        buffered ``next_uint32`` shifted down; ``k == 0`` consumes nothing
        (numpy's zero-range path).  Requires ``1 <= k <= 31``.
        """
        if not 1 <= k <= 31:
            raise ValueError("pow2_batch requires 1 <= k <= 31")
        out = np.empty((count, len(rows)), dtype=np.int64)
        base = np.int64(1 << k)
        shift = np.uint64(32 - k)
        for j in range(count):
            out[j] = (self.next_u32(rows) >> shift).astype(np.int64) + base
        return out

    def bounded_scalar(self, row: int, rng: int) -> int:
        """``Generator.integers(0, rng + 1)`` for one row, any 64-bit range."""
        if rng == 0:
            return 0
        rows = np.asarray([row], dtype=np.int64)
        if rng < 0xFFFFFFFF:
            return int(self.bounded_u32(rows, np.uint64(rng))[0])
        if rng == 0xFFFFFFFF:
            return int(self.next_u32(rows)[0])
        if rng == 0xFFFFFFFFFFFFFFFF:
            return int(self.raw64(rows)[0])
        rng_excl = rng + 1
        m = int(self.raw64(rows)[0]) * rng_excl
        leftover = m & 0xFFFFFFFFFFFFFFFF
        if leftover < rng_excl:
            threshold = ((1 << 64) - rng_excl) % rng_excl
            while leftover < threshold:
                m = int(self.raw64(rows)[0]) * rng_excl
                leftover = m & 0xFFFFFFFFFFFFFFFF
        return m >> 64


_FAST_SEED_OK: Optional[bool] = None
_FAST_BOUNDED_OK: Optional[bool] = None
_LOCKSTEP_STREAMS_OK: Optional[bool] = None


def lockstep_streams_ok() -> bool:
    """Whether :class:`NodeStreamPool` matches this numpy at runtime.

    Verified once per process by replaying an interleaved draw pattern
    (doubles, power-of-two integer batches, arbitrary bounded integers,
    buffer-straddling alternations) against real ``default_rng`` streams.
    Any mismatch permanently disables the lockstep fast path.
    """
    global _LOCKSTEP_STREAMS_OK
    if _LOCKSTEP_STREAMS_OK is None:
        _LOCKSTEP_STREAMS_OK = fast_seed_path_ok() and _verify_lockstep_streams()
    return _LOCKSTEP_STREAMS_OK


def _verify_lockstep_streams() -> bool:
    try:
        sequences = [
            np.random.SeedSequence(entropy, spawn_key=key)
            for entropy, key in [
                (20210219, (1, 0, 0)),
                (7, (2, 5, 0)),
                ((1 << 80) + 3, (0, 1, 0)),
            ]
        ]
        pool = NodeStreamPool(len(sequences))
        rows = np.arange(len(sequences), dtype=np.int64)
        pool.seed_rows(
            rows,
            np.stack([s.generate_state(4, np.uint64) for s in sequences]),
        )
        references = [np.random.default_rng(s) for s in sequences]

        if not np.array_equal(
            pool.doubles(rows), np.array([g.random() for g in references])
        ):
            return False
        expected = np.stack(
            [g.integers(8, 16, size=3) for g in references], axis=1
        )
        if not np.array_equal(pool.pow2_batch(rows, 3, 3), expected):
            return False
        # A double between bounded draws must skip the 32-bit buffer...
        if not np.array_equal(
            pool.doubles(rows), np.array([g.random() for g in references])
        ):
            return False
        # ... and the next bounded draw must resume from the buffered half.
        for bound in (1, 2, 7, 100, 1 << 20):
            mine = pool.bounded_u32(rows, np.uint64(bound - 1))
            theirs = np.array([g.integers(0, bound) for g in references])
            if not np.array_equal(mine.astype(np.int64), theirs):
                return False
        for row, generator in enumerate(references):
            for bound in (3, 1 << 34, 1 << 63):
                if pool.bounded_scalar(row, bound - 1) != int(
                    generator.integers(0, bound)
                ):
                    return False
        return True
    except Exception:  # pragma: no cover - defensive: never break seeding
        return False


def fast_bounded_pairs_ok() -> bool:
    """Whether :func:`bulk_bounded_pairs63` matches this numpy at runtime."""
    global _FAST_BOUNDED_OK
    if _FAST_BOUNDED_OK is None:
        _FAST_BOUNDED_OK = _verify_fast_bounded_pairs()
    return _FAST_BOUNDED_OK


def _verify_fast_bounded_pairs() -> bool:
    try:
        sequences = [
            np.random.SeedSequence(entropy, spawn_key=key)
            for entropy, key in [(7, (0, 0)), (99, (3, 0)), ((1 << 90) + 5, (1,))]
        ]
        words = np.stack(
            [sequence.generate_state(4, np.uint64) for sequence in sequences]
        )
        mine = bulk_bounded_pairs63(words)
        for row, sequence in enumerate(sequences):
            generator = np.random.default_rng(sequence)
            expected = (
                int(generator.integers(0, 2**63 - 1)),
                int(generator.integers(0, 2**63 - 1)),
            )
            if (int(mine[row, 0]), int(mine[row, 1])) != expected:
                return False
        return True
    except Exception:  # pragma: no cover - defensive: never break seeding
        return False


def fast_seed_path_ok() -> bool:
    """Whether the bulk-seeding replication matches this numpy at runtime.

    Checked once per process against actual ``SeedSequence``/``default_rng``
    objects (multi-word entropy, nested spawn keys, stream draws); any
    mismatch permanently disables the fast path so callers degrade to the
    plain per-child API instead of producing wrong streams.
    """
    global _FAST_SEED_OK
    if _FAST_SEED_OK is None:
        _FAST_SEED_OK = _verify_fast_seed_path()
    return _FAST_SEED_OK


def _verify_fast_seed_path() -> bool:
    try:
        samples: List[Tuple[int, Tuple[int, ...]]] = [
            (20210219, (3, 1, 7, 0)),
            (0, (0,)),
            ((1 << 100) + 12345, (2, 0)),
        ]
        for entropy, key in samples:
            expected = np.random.SeedSequence(
                entropy, spawn_key=key
            ).generate_state(4, np.uint64)
            words = assemble_seed_words(entropy, [key])
            if words is None or not np.array_equal(
                bulk_seed_states(words)[0], expected
            ):
                return False
        # Stream equivalence through the reseeding path.
        sequence = np.random.SeedSequence(99, spawn_key=(4, 2))
        reference = np.random.default_rng(sequence).random(16)
        reusable = ReusableGenerator()
        words = assemble_seed_words(99, [(4, 2)])
        replayed = reusable.reseed(bulk_seed_states(words)[0]).random(16)
        if not np.array_equal(reference, replayed):
            return False
        # Entropy-only path (strategy seeds drawn as integers).
        expected = np.random.SeedSequence((1 << 40) + 7).generate_state(4, np.uint64)
        if not np.array_equal(seed_states_for_entropies([(1 << 40) + 7])[0], expected):
            return False
        return True
    except Exception:  # pragma: no cover - defensive: never break seeding
        return False
