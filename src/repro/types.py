"""Shared value types used across the simulator, protocols and adversaries.

The vocabulary follows the paper (Chen, Jiang, Zheng, PODC 2021):

* Time is divided into discrete, synchronized *slots*, numbered from 1.
* In each slot every active node either *broadcasts* or stays *idle*.
* A slot produces exactly one of three physical outcomes: silence (nobody
  broadcast), success (exactly one broadcast and the slot is not jammed) or
  collision (two or more broadcasts, or the slot is jammed).
* Without collision detection, nodes receive only two kinds of feedback:
  ``SUCCESS`` (carrying the transmitted message) or ``NO_SUCCESS``.  With
  collision detection (used only by the reference baseline) the feedback
  additionally distinguishes ``SILENCE`` from ``COLLISION``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class SlotOutcome(enum.Enum):
    """Physical outcome of a slot, as seen by an omniscient observer."""

    SILENCE = "silence"
    SUCCESS = "success"
    COLLISION = "collision"


class Feedback(enum.Enum):
    """Channel feedback delivered to nodes (and to the adversary).

    ``NO_SUCCESS`` is the only failure signal available without collision
    detection; ``SILENCE`` and ``COLLISION`` are only ever delivered when the
    channel is configured with collision detection enabled.
    """

    SUCCESS = "success"
    NO_SUCCESS = "no_success"
    SILENCE = "silence"
    COLLISION = "collision"

    @property
    def is_success(self) -> bool:
        return self is Feedback.SUCCESS


class ChannelParity(enum.IntEnum):
    """Parity of a global slot index, identifying one of the two virtual channels.

    The paper's algorithm conceptually splits the single physical channel into
    an *odd channel* (slots 1, 3, 5, ...) and an *even channel* (slots 2, 4,
    6, ...).  Nodes never need to know which one is "odd" globally; they only
    need the parity of slot indices relative to observed events.
    """

    ODD = 1
    EVEN = 0

    @classmethod
    def of_slot(cls, slot: int) -> "ChannelParity":
        return cls.ODD if slot % 2 == 1 else cls.EVEN

    def other(self) -> "ChannelParity":
        return ChannelParity.EVEN if self is ChannelParity.ODD else ChannelParity.ODD


NodeId = int


@dataclass(frozen=True)
class SlotRecord:
    """Complete record of what happened in one slot.

    Attributes
    ----------
    slot:
        1-based global slot index.
    broadcasters:
        Ids of nodes that broadcast in this slot.
    jammed:
        Whether the adversary jammed the slot.
    outcome:
        Physical outcome after accounting for jamming.
    successful_node:
        Id of the node whose message was delivered, if any.
    active_nodes:
        Number of nodes present in the system during this slot (after the
        slot's arrivals, before removing a successful node).
    arrivals:
        Number of nodes injected at the beginning of this slot.
    """

    slot: int
    broadcasters: Tuple[NodeId, ...]
    jammed: bool
    outcome: SlotOutcome
    successful_node: Optional[NodeId]
    active_nodes: int
    arrivals: int

    @property
    def is_active(self) -> bool:
        """An *active* slot is one with at least one node in the system."""
        return self.active_nodes > 0

    @property
    def is_success(self) -> bool:
        return self.outcome is SlotOutcome.SUCCESS


@dataclass
class NodeStats:
    """Lifetime statistics of a single node."""

    node_id: NodeId
    arrival_slot: int
    success_slot: Optional[int] = None
    broadcast_count: int = 0

    @property
    def finished(self) -> bool:
        return self.success_slot is not None

    @property
    def latency(self) -> Optional[int]:
        """Number of slots from arrival until success, inclusive."""
        if self.success_slot is None:
            return None
        return self.success_slot - self.arrival_slot + 1


@dataclass
class AdversaryAction:
    """What the adversary decides to do at the beginning of a slot."""

    arrivals: int = 0
    jam: bool = False

    def __post_init__(self) -> None:
        if self.arrivals < 0:
            raise ValueError("arrivals must be non-negative")


@dataclass
class SlotObservation:
    """Information made available to nodes and the adversary after a slot.

    The adversary receives exactly the same feedback as the nodes (it does not
    possess collision detection either), plus knowledge of its own actions.
    """

    slot: int
    feedback: Feedback
    message_node: Optional[NodeId] = None


@dataclass
class SimulationSummary:
    """Aggregate counters maintained incrementally during a run."""

    total_slots: int = 0
    active_slots: int = 0
    successes: int = 0
    collisions: int = 0
    silent_slots: int = 0
    jammed_slots: int = 0
    arrivals: int = 0
    total_broadcasts: int = 0
    prefix_violations: int = 0
    counters: dict = field(default_factory=dict)

    def record(self, record: SlotRecord) -> None:
        self.total_slots += 1
        self.arrivals += record.arrivals
        self.total_broadcasts += len(record.broadcasters)
        if record.is_active:
            self.active_slots += 1
        if record.jammed:
            self.jammed_slots += 1
        if record.outcome is SlotOutcome.SUCCESS:
            self.successes += 1
        elif record.outcome is SlotOutcome.COLLISION:
            self.collisions += 1
        else:
            self.silent_slots += 1
