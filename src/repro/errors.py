"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """Raised when a simulation, protocol or adversary is misconfigured."""


class SpecError(ConfigurationError):
    """Raised when a declarative spec is invalid or an object is not spec-able.

    Subclasses :class:`ConfigurationError` so existing ``except
    ConfigurationError`` handlers (CLI, experiments) also cover spec problems.
    """


class ProtocolError(ReproError):
    """Raised when a protocol implementation violates the channel contract."""


class AdversaryError(ReproError):
    """Raised when an adversary produces an invalid action."""


class WorkerError(ReproError):
    """A worker shard failed permanently during a parallel study.

    Raised by the supervised worker pool when a shard has exhausted its
    retry budget and in-process degradation is disabled.  Carries enough
    context to identify exactly which trials were lost.
    """

    def __init__(
        self,
        message: str,
        shard_index: int,
        trial_range: "tuple[int, int]",
        attempts: int = 1,
        cause: str = "",
    ) -> None:
        super().__init__(message)
        self.shard_index = shard_index
        #: Half-open ``(first_trial, one_past_last_trial)`` range of the shard.
        self.trial_range = tuple(trial_range)
        self.attempts = attempts
        self.cause = cause


class FaultInjected(ReproError):
    """Raised (or triggered) by a deterministic :class:`repro.faults.FaultPlan`.

    Never raised in production configurations — only when a fault plan is
    activated via ``REPRO_FAULTS`` or :func:`repro.faults.injected`.
    """

    def __init__(self, site: str, detail: str = "") -> None:
        super().__init__(
            f"injected fault at {site!r}" + (f": {detail}" if detail else "")
        )
        self.site = site


class ServeError(ReproError):
    """Raised by the sweep service: protocol violations, unreachable or
    misbehaving servers, and failed jobs surfaced to a waiting client."""


class ServeRetriable(ServeError):
    """A transient service failure the client may safely retry.

    Every service request is idempotent — jobs are deduped by spec hash —
    so a request that timed out or lost its connection can be replayed
    verbatim: the client's backoff loop catches exactly this type.
    """


class ServeTimeout(ServeRetriable):
    """A socket operation against the sweep server exceeded its deadline
    (``REPRO_SERVE_TIMEOUT`` / the client's ``timeout``)."""


class ServeUnavailable(ServeRetriable):
    """The sweep server could not be reached or dropped the connection
    mid-request (refused, reset, or restarting)."""


class AnalysisError(ReproError):
    """Raised when analysis routines receive unusable data."""


class ExperimentError(ReproError):
    """Raised when an experiment cannot be run or produces no data."""
