"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """Raised when a simulation, protocol or adversary is misconfigured."""


class SpecError(ConfigurationError):
    """Raised when a declarative spec is invalid or an object is not spec-able.

    Subclasses :class:`ConfigurationError` so existing ``except
    ConfigurationError`` handlers (CLI, experiments) also cover spec problems.
    """


class ProtocolError(ReproError):
    """Raised when a protocol implementation violates the channel contract."""


class AdversaryError(ReproError):
    """Raised when an adversary produces an invalid action."""


class AnalysisError(ReproError):
    """Raised when analysis routines receive unusable data."""


class ExperimentError(ReproError):
    """Raised when an experiment cannot be run or produces no data."""
